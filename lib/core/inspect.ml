(* The evaluation metric of the paper (section 6.1): simulate a user
   exploring the dependence graph outward from the seed in breadth-first
   order (as with CodeSurfer-style browsing [19]), and count how many
   distinct source statements she inspects before discovering all the
   desired statements.

   Counting is at source-line granularity: a source statement lowered to
   several IR instructions is inspected once.  Synthetic nodes (formals,
   phis, gotos) are traversed but not counted. *)

type report = {
  inspected : int;             (* statements read until all desired found *)
  found : bool;                (* were all desired statements discovered? *)
  slice_size : int;            (* total statements in the full slice *)
  order : (string * int) list; (* (file, line) in inspection order *)
  order_depths : int list;     (* BFS layer each counted line first appears
                                  in; parallel to [order] *)
}

let pp_report ppf r =
  Format.fprintf ppf "inspected=%d found=%b slice=%d" r.inspected r.found
    r.slice_size

(* BFS over dependence edges honoring the slicing mode; stops once every
   desired (file-agnostic) line has been seen. *)
let bfs (g : Sdg.t) ~(seeds : Sdg.node list) ~(desired : int list)
    (mode : Slicer.mode) : report =
  let best : (Sdg.node, int) Hashtbl.t = Hashtbl.create 256 in
  let counted : (string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let depths = ref [] in
  let depth = ref 0 in
  let remaining = ref (List.sort_uniq compare desired) in
  let inspected_when_found = ref None in
  let count_node n =
    if Sdg.node_countable g n then begin
      let loc = Sdg.node_loc g n in
      let key = (loc.Slice_ir.Loc.file, loc.Slice_ir.Loc.line) in
      if not (Hashtbl.mem counted key) then begin
        Hashtbl.replace counted key ();
        order := key :: !order;
        depths := !depth :: !depths;
        remaining := List.filter (fun l -> l <> loc.Slice_ir.Loc.line) !remaining;
        if !remaining = [] && !inspected_when_found = None then
          inspected_when_found := Some (Hashtbl.length counted)
      end
    end
  in
  (* Layered BFS for a deterministic, distance-respecting inspection order. *)
  let layer = ref [] in
  let push n budget =
    match Hashtbl.find_opt best n with
    | Some b when b >= budget -> ()
    | Some _ | None ->
      Hashtbl.replace best n budget;
      layer := (n, budget) :: !layer
  in
  List.iter (fun s -> push s (Slicer.initial_budget mode)) seeds;
  while !layer <> [] do
    let current = List.sort compare (List.rev !layer) in
    layer := [];
    (* count this layer first, then expand *)
    List.iter (fun (n, _) -> count_node n) current;
    List.iter
      (fun (n, budget) ->
        Sdg.deps_iter g n (fun dep kind ->
            match Slicer.edge_policy mode kind with
            | `Follow -> push dep budget
            | `Costly -> if budget > 0 then push dep (budget - 1)
            | `Skip -> ()))
      current;
    incr depth
  done;
  let slice_size = Hashtbl.length counted in
  let order = List.rev !order and order_depths = List.rev !depths in
  match !inspected_when_found with
  | Some k -> { inspected = k; found = true; slice_size; order; order_depths }
  | None ->
    { inspected = slice_size; found = false; slice_size; order; order_depths }
