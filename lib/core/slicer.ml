(* Backward slicing as graph reachability over the classified SDG
   (paper, section 5.2).

   The mode selects which dependence edges are followed:
   - [Thin]: producer edges only — the thin slice;
   - [Thin_with_aliasing k]: additionally crosses up to [k] base-pointer or
     index edges along any path, the controlled one-level aliasing
     expansion used for nanoxml-5 in the evaluation (section 6.2);
   - [Traditional_data]: all flow dependences including base pointers and
     indices, no control — the "traditional data slicer" the paper
     compares against;
   - [Traditional_full]: also follows control dependences.

   The walk itself runs on the frozen CSR view of the graph (or the list
   adjacency before [Sdg.freeze]) with flat scratch buffers: a byte array
   of per-node best budgets doubling as the visited set, an entry-unique
   int ring deque, and a touched-node log so both the result emission and
   the buffer reset cost O(slice), not O(graph) — no Hashtbl, no Queue,
   no per-row list allocation on the hot path.  The seed implementation
   (Hashtbl + Queue + sort over adjacency lists) is kept verbatim in
   [Reference] for parity tests and A/B benchmarks. *)

type mode =
  | Thin
  | Thin_with_aliasing of int
  | Traditional_data
  | Traditional_full

(* Telemetry: traversal effort (shared by backward and forward walks). *)
let c_nodes_visited = Slice_obs.counter "slicer.nodes_visited"
let c_edges_followed = Slice_obs.counter "slicer.edges_followed"
let c_edges_skipped = Slice_obs.counter "slicer.edges_skipped"
let c_edges_costly = Slice_obs.counter "slicer.edges_costly"
let c_budget_spent = Slice_obs.counter "slicer.budget_spent"
let c_slices = Slice_obs.counter "slicer.slices_computed"
let g_frontier_peak = Slice_obs.gauge "slicer.frontier_peak"
let h_slice_nodes = Slice_obs.histogram "slicer.slice_nodes"

let mode_to_string = function
  | Thin -> "thin"
  | Thin_with_aliasing k -> Printf.sprintf "thin+alias%d" k
  | Traditional_data -> "traditional-data"
  | Traditional_full -> "traditional-full"

(* Which edges may be followed, and at what base-pointer budget cost. *)
let edge_policy (mode : mode) (kind : Sdg.edge_kind) : [ `Follow | `Costly | `Skip ]
    =
  match (mode, kind) with
  | _, (Sdg.Producer_local | Sdg.Producer_heap | Sdg.Param_in | Sdg.Return_value)
    -> `Follow
  | Thin, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control) -> `Skip
  | Thin_with_aliasing _, (Sdg.Base_pointer | Sdg.Index) -> `Costly
  | Thin_with_aliasing _, (Sdg.Call_actual | Sdg.Control) -> `Skip
  | Traditional_data, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual) -> `Follow
  | Traditional_data, Sdg.Control -> `Skip
  | Traditional_full, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control)
    -> `Follow

(* Budgets are stored in a byte each by the CSR walk; [initial_budget]
   saturates at [max_aliasing_budget] for EVERY implementation (CSR,
   [Reference], the BFS inspection metric) — the clamp lives here, in one
   place, precisely so the walks cannot disagree at the boundary (the old
   code clamped only inside the CSR walk, so [Thin_with_aliasing 255]
   meant 255 to [Reference] but 254 to the CSR walk).  Indistinguishable
   in practice: exceeding it would need a producer-free path crossing
   more than 254 base-pointer/index edges. *)
let max_aliasing_budget = 254

let initial_budget = function
  | Thin | Traditional_data | Traditional_full -> 0
  | Thin_with_aliasing k -> min (max 0 k) max_aliasing_budget

(* ------------------------------------------------------------------ *)
(* The CSR walk                                                        *)
(* ------------------------------------------------------------------ *)

(* Reusable per-walk scratch.  [best] stores, per node, 0 for "never
   reached" or (best remaining budget + 1): the visited set and the
   budget table in one byte array.  [queued] (a dense [Bits] set — one
   bit per node is all a membership flag needs) marks nodes currently in
   the ring so every node occupies at most one queue slot (the
   duplicate-enqueue fix: the old walk re-enqueued a node on every
   budget improvement, up to k+1 times under [Thin_with_aliasing k],
   inflating [slicer.frontier_peak]).  The ring therefore never holds
   more than [cap] entries and [cap + 1] slots suffice.

   [touched] logs each node on its FIRST visit.  It serves double duty:
   the slice result is the sorted touched prefix, and after emitting it
   the walk zeroes exactly those [best] entries, restoring the all-zero
   invariant.  Between walks [best] and [queued] are therefore always
   all-zero, so a walk costs O(slice + edges scanned), never O(graph) —
   the representative seeds of the BENCH suite produce slices several
   orders of magnitude smaller than the SDG, and an O(num_nodes)
   [Bytes.fill] + full scan per slice would dominate the walk itself. *)
type scratch = {
  mutable cap : int;           (* number of nodes the buffers cover *)
  mutable best : Bytes.t;      (* cap bytes, all-zero between walks *)
  queued : Slice_util.Bits.t;  (* dense bitset, all-clear between walks *)
  mutable ring : int array;    (* cap + 1 slots *)
  mutable touched : int array; (* cap slots; first-visit log *)
}

let create_scratch (g : Sdg.t) : scratch =
  let n = max 1 (Sdg.num_nodes g) in
  { cap = n;
    best = Bytes.make n '\000';
    queued = Slice_util.Bits.create ~capacity:n ();
    ring = Array.make (n + 1) 0;
    touched = Array.make n 0 }

(* Grow-only: the buffers need no clearing because every walk zeroes
   exactly the entries it touched before returning ([queued] grows on
   demand inside [Bits]). *)
let ensure_capacity (s : scratch) (n : int) : unit =
  if s.cap < n then begin
    s.cap <- n;
    s.best <- Bytes.make n '\000';
    s.ring <- Array.make (n + 1) 0;
    s.touched <- Array.make n 0
  end

(* Reachability keeping, per node, the best (largest) remaining budget at
   which it has been reached: a node reached with more budget left may
   reveal further base-pointer edges.  Backward and forward slicing share
   this walk, parameterised by the adjacency direction.  Entry-unique:
   a budget improvement for a node already in the ring only updates
   [best]; the pending ring entry reads the improved budget at pop. *)
let walk_scratch (scratch : scratch)
    (iter : Sdg.t -> Sdg.node -> (Sdg.node -> Sdg.edge_kind -> unit) -> unit)
    (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
  Slice_obs.bump c_slices;
  let n = Sdg.num_nodes g in
  ensure_capacity scratch n;
  let best = scratch.best and queued = scratch.queued and ring = scratch.ring in
  let touched = scratch.touched in
  let slots = Array.length ring in
  let head = ref 0 and tail = ref 0 and count = ref 0 and peak = ref 0 in
  let tcount = ref 0 in
  let push node budget =
    let b1 = budget + 1 in
    if Char.code (Bytes.unsafe_get best node) < b1 then begin
      if Bytes.unsafe_get best node = '\000' then begin
        (* first visit: log for result emission and buffer reset *)
        Array.unsafe_set touched !tcount node;
        incr tcount
      end;
      Bytes.unsafe_set best node (Char.unsafe_chr b1);
      if Slice_util.Bits.add queued node then begin
        Array.unsafe_set ring !tail node;
        tail := (!tail + 1) mod slots;
        incr count;
        if !count > !peak then peak := !count
      end
    end
  in
  (* [initial_budget] is already clamped to [max_aliasing_budget], which
     fits the byte-wide [best] table (budget + 1 <= 255) *)
  let k0 = initial_budget mode in
  List.iter (fun s -> push s k0) seeds;
  while !count > 0 do
    let node = Array.unsafe_get ring !head in
    head := (!head + 1) mod slots;
    decr count;
    Slice_util.Bits.remove queued node;
    let budget = Char.code (Bytes.unsafe_get best node) - 1 in
    Slice_obs.bump c_nodes_visited;
    iter g node (fun dep kind ->
        match edge_policy mode kind with
        | `Follow ->
          Slice_obs.bump c_edges_followed;
          push dep budget
        | `Costly ->
          if budget > 0 then begin
            Slice_obs.bump c_edges_costly;
            Slice_obs.bump c_budget_spent;
            push dep (budget - 1)
          end
          else Slice_obs.bump c_edges_skipped
        | `Skip -> Slice_obs.bump c_edges_skipped)
  done;
  Slice_obs.max_gauge g_frontier_peak (float_of_int !peak);
  (* [queued] is already all-zero again: every enqueued node was popped.
     Sort the touched prefix (each node appears exactly once) for the
     result, then zero those [best] entries to restore the invariant. *)
  let size = !tcount in
  Slice_obs.observe h_slice_nodes (float_of_int size);
  let result = Array.sub touched 0 size in
  Array.sort (fun (a : int) b -> compare a b) result;
  for i = 0 to size - 1 do
    Bytes.unsafe_set best (Array.unsafe_get touched i) '\000'
  done;
  Array.fold_right (fun x acc -> x :: acc) result []

(* One scratch per DOMAIN, lazily created and grown, shared by all slices
   in that domain that do not pass an explicit [?scratch]: within a
   domain slicing is not re-entrant (edge callbacks never start another
   walk), so a single buffer set suffices and per-slice allocation stays
   O(slice).  The cell lives in [Domain.DLS] — the old process-global
   [shared_scratch] was a correctness bug the moment two domains sliced
   concurrently (both walks would interleave writes into the same [best]
   table).  A parallel batch executor can either rely on this per-domain
   default or thread explicit [create_scratch] handles. *)
let dls_scratch : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get_scratch (g : Sdg.t) : scratch =
  let cell = Domain.DLS.get dls_scratch in
  match !cell with
  | Some s ->
    ensure_capacity s (Sdg.num_nodes g);
    s
  | None ->
    let s = create_scratch g in
    cell := Some s;
    s

(* Resolve the scratch an entry point walks on: the caller's explicit
   handle (grown to fit [g]) if given, else the calling domain's shared
   one. *)
let resolve_scratch ?scratch (g : Sdg.t) : scratch =
  match scratch with
  | Some s ->
    ensure_capacity s (max 1 (Sdg.num_nodes g));
    s
  | None -> get_scratch g

let slice ?scratch (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    Sdg.node list =
  Slice_obs.span "slicer.slice" (fun () ->
      walk_scratch (resolve_scratch ?scratch g) Sdg.deps_iter g ~seeds mode)

(* Forward slicing: which statements CONSUME the value a seed produces?
   Same edge discipline as backward slicing, traversed over use-edges.
   Useful for impact analysis ("if I change this line, which outputs can
   move?") — the dual of the paper's backward producer chains. *)
let forward_slice ?scratch (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    Sdg.node list =
  Slice_obs.span "slicer.forward" (fun () ->
      walk_scratch (resolve_scratch ?scratch g) Sdg.uses_iter g ~seeds mode)

(* Many slices over one (frozen) graph, one scratch allocation.  The
   per-seed walks reuse the byte arrays and the ring; only the result
   lists are fresh. *)
let slice_batch ?scratch (g : Sdg.t) ~(seeds_list : Sdg.node list list)
    (mode : mode) : Sdg.node list list =
  Slice_obs.span "slicer.slice_batch" (fun () ->
      let scratch = resolve_scratch ?scratch g in
      List.map
        (fun seeds -> walk_scratch scratch Sdg.deps_iter g ~seeds mode)
        seeds_list)

let forward_slice_batch ?scratch (g : Sdg.t) ~(seeds_list : Sdg.node list list)
    (mode : mode) : Sdg.node list list =
  (* own span name: this used to record as "slicer.slice_batch", folding
     forward-batch walks into the backward-batch phase total *)
  Slice_obs.span "slicer.forward_batch" (fun () ->
      let scratch = resolve_scratch ?scratch g in
      List.map
        (fun seeds -> walk_scratch scratch Sdg.uses_iter g ~seeds mode)
        seeds_list)

(* Intersection of two sorted-unique node lists: order-independent by
   construction ([inter a b = inter b a]) and sorted-unique output. *)
let inter_sorted (a : Sdg.node list) (b : Sdg.node list) : Sdg.node list =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
      if x < y then go a' b acc
      else if y < x then go a b' acc
      else go a' b' (x :: acc)
  in
  go a b []

(* A (thin) chop: the statements on producer paths from [source] to
   [sink] — how does the value get from here to there?  Both walks emit
   sorted-unique lists, so the merge intersection is symmetric: chopping
   never depends on which walk the membership table was built from (the
   old implementation filtered the backward walk through a Hashtbl of the
   forward walk only). *)
let chop (g : Sdg.t) ~(source : Sdg.node list) ~(sink : Sdg.node list)
    (mode : mode) : Sdg.node list =
  let forward = forward_slice g ~seeds:source mode in
  let backward = slice g ~seeds:sink mode in
  inter_sorted forward backward

(* Distinct source locations of countable nodes, the granularity a user
   reads. *)
let nodes_to_lines (g : Sdg.t) (nodes : Sdg.node list) : Slice_ir.Loc.t list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun n ->
      if Sdg.node_countable g n then begin
        let loc = Sdg.node_loc g n in
        let key = (loc.Slice_ir.Loc.file, loc.Slice_ir.Loc.line) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := loc :: !out
        end
      end)
    nodes;
  List.sort Slice_ir.Loc.compare !out

let slice_lines (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Slice_ir.Loc.t list =
  nodes_to_lines g (slice g ~seeds mode)

(* Distinct line NUMBERS of a location list.  [nodes_to_lines] dedups per
   (file, line); once the file component is projected away, two files
   sharing a line number would otherwise yield the same int twice (the
   multi-file duplicate-line bug). *)
let locs_to_line_numbers (locs : Slice_ir.Loc.t list) : int list =
  List.sort_uniq compare (List.map (fun l -> l.Slice_ir.Loc.line) locs)

let slice_line_numbers (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    int list =
  locs_to_line_numbers (slice_lines g ~seeds mode)

(* ------------------------------------------------------------------ *)
(* Reference implementation (the seed algorithm)                       *)
(* ------------------------------------------------------------------ *)

(* The pre-CSR walk, verbatim: Hashtbl visited/budget table, stdlib
   Queue with stale-entry re-enqueues, and a polymorphic-compare sort of
   the result.  Runs over the adjacency-list shims, so it behaves
   identically on frozen and unfrozen graphs (though it allocates rows
   on a frozen one).  It bumps no telemetry: it exists to pin down the
   CSR walk's semantics (parity property tests) and as the A side of the
   BENCH A/B. *)
module Reference = struct
  let walk (next : Sdg.t -> Sdg.node -> (Sdg.node * Sdg.edge_kind) list)
      (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
    let best : (Sdg.node, int) Hashtbl.t = Hashtbl.create 256 in
    let queue = Queue.create () in
    let push n budget =
      match Hashtbl.find_opt best n with
      | Some b when b >= budget -> ()
      | Some _ | None ->
        Hashtbl.replace best n budget;
        Queue.add (n, budget) queue
    in
    List.iter (fun s -> push s (initial_budget mode)) seeds;
    while not (Queue.is_empty queue) do
      let n, budget = Queue.pop queue in
      (* stale entries: a better budget may have been recorded since *)
      if Hashtbl.find_opt best n = Some budget then
        List.iter
          (fun (dep, kind) ->
            match edge_policy mode kind with
            | `Follow -> push dep budget
            | `Costly -> if budget > 0 then push dep (budget - 1)
            | `Skip -> ())
          (next g n)
    done;
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) best [])

  let slice g ~seeds mode = walk Sdg.deps g ~seeds mode
  let forward_slice g ~seeds mode = walk Sdg.uses g ~seeds mode

  let slice_lines g ~seeds mode = nodes_to_lines g (slice g ~seeds mode)
end
