(* Backward slicing as graph reachability over the classified SDG
   (paper, section 5.2).

   The mode selects which dependence edges are followed:
   - [Thin]: producer edges only — the thin slice;
   - [Thin_with_aliasing k]: additionally crosses up to [k] base-pointer or
     index edges along any path, the controlled one-level aliasing
     expansion used for nanoxml-5 in the evaluation (section 6.2);
   - [Traditional_data]: all flow dependences including base pointers and
     indices, no control — the "traditional data slicer" the paper
     compares against;
   - [Traditional_full]: also follows control dependences.

   The walk itself runs on the frozen CSR view of the graph (or the list
   adjacency before [Sdg.freeze]) with flat scratch buffers: a byte array
   of per-node best budgets doubling as the visited set, an entry-unique
   int ring deque, and a touched-node log so both the result emission and
   the buffer reset cost O(slice), not O(graph) — no Hashtbl, no Queue,
   no per-row list allocation on the hot path.  The seed implementation
   (Hashtbl + Queue + sort over adjacency lists) is kept verbatim in
   [Reference] for parity tests and A/B benchmarks. *)

type mode =
  | Thin
  | Thin_with_aliasing of int
  | Traditional_data
  | Traditional_full

(* Telemetry: traversal effort (shared by backward and forward walks). *)
let c_nodes_visited = Slice_obs.counter "slicer.nodes_visited"
let c_edges_followed = Slice_obs.counter "slicer.edges_followed"
let c_edges_skipped = Slice_obs.counter "slicer.edges_skipped"
let c_edges_costly = Slice_obs.counter "slicer.edges_costly"
let c_budget_spent = Slice_obs.counter "slicer.budget_spent"
let c_slices = Slice_obs.counter "slicer.slices_computed"
let g_frontier_peak = Slice_obs.gauge "slicer.frontier_peak"
let g_scratch_bytes = Slice_obs.gauge "slicer.scratch_bytes"
let h_slice_nodes = Slice_obs.histogram "slicer.slice_nodes"

(* BFS layer of each member at first visit, observed only by the
   provenance-recording walk (the plain walk stays annotation-free). *)
let h_bfs_distance = Slice_obs.histogram "slicer.bfs_distance"

let mode_to_string = function
  | Thin -> "thin"
  | Thin_with_aliasing k -> Printf.sprintf "thin+alias%d" k
  | Traditional_data -> "traditional-data"
  | Traditional_full -> "traditional-full"

(* Accepts both the CLI spellings ("thin", "trad", "full", "alias:K") and
   the [mode_to_string] round-trip forms, so every driver — cmdliner
   conv, serve protocol, repro files — parses modes through one place. *)
let mode_of_string (s : string) : mode option =
  let prefixed p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let int_suffix p =
    int_of_string_opt (String.sub s (String.length p) (String.length s - String.length p))
  in
  match s with
  | "thin" -> Some Thin
  | "trad" | "traditional" | "traditional-data" -> Some Traditional_data
  | "full" | "traditional-full" -> Some Traditional_full
  | _ ->
    if prefixed "alias:" then
      Option.map (fun k -> Thin_with_aliasing k) (int_suffix "alias:")
    else if prefixed "thin+alias" then
      Option.map (fun k -> Thin_with_aliasing k) (int_suffix "thin+alias")
    else None

(* Which edges may be followed, and at what base-pointer budget cost. *)
let edge_policy (mode : mode) (kind : Sdg.edge_kind) : [ `Follow | `Costly | `Skip ]
    =
  match (mode, kind) with
  | _, (Sdg.Producer_local | Sdg.Producer_heap | Sdg.Param_in | Sdg.Return_value)
    -> `Follow
  | Thin, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control) -> `Skip
  | Thin_with_aliasing _, (Sdg.Base_pointer | Sdg.Index) -> `Costly
  | Thin_with_aliasing _, (Sdg.Call_actual | Sdg.Control) -> `Skip
  | Traditional_data, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual) -> `Follow
  | Traditional_data, Sdg.Control -> `Skip
  | Traditional_full, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control)
    -> `Follow

(* Budgets are stored in a byte each by the CSR walk; [initial_budget]
   saturates at [max_aliasing_budget] for EVERY implementation (CSR,
   [Reference], the BFS inspection metric) — the clamp lives here, in one
   place, precisely so the walks cannot disagree at the boundary (the old
   code clamped only inside the CSR walk, so [Thin_with_aliasing 255]
   meant 255 to [Reference] but 254 to the CSR walk).  Indistinguishable
   in practice: exceeding it would need a producer-free path crossing
   more than 254 base-pointer/index edges. *)
let max_aliasing_budget = 254

let initial_budget = function
  | Thin | Traditional_data | Traditional_full -> 0
  | Thin_with_aliasing k -> min (max 0 k) max_aliasing_budget

(* ------------------------------------------------------------------ *)
(* The CSR walk                                                        *)
(* ------------------------------------------------------------------ *)

(* Reusable per-walk scratch.  [best] stores, per node, 0 for "never
   reached" or (best remaining budget + 1): the visited set and the
   budget table in one byte array.  [queued] (a dense [Bits] set — one
   bit per node is all a membership flag needs) marks nodes currently in
   the ring so every node occupies at most one queue slot (the
   duplicate-enqueue fix: the old walk re-enqueued a node on every
   budget improvement, up to k+1 times under [Thin_with_aliasing k],
   inflating [slicer.frontier_peak]).  The ring therefore never holds
   more than [cap] entries and [cap + 1] slots suffice.

   [touched] logs each node on its FIRST visit.  It serves double duty:
   the slice result is the sorted touched prefix, and after emitting it
   the walk zeroes exactly those [best] entries, restoring the all-zero
   invariant.  Between walks [best] and [queued] are therefore always
   all-zero, so a walk costs O(slice + edges scanned), never O(graph) —
   the representative seeds of the BENCH suite produce slices several
   orders of magnitude smaller than the SDG, and an O(num_nodes)
   [Bytes.fill] + full scan per slice would dominate the walk itself. *)
type scratch = {
  mutable cap : int;           (* number of nodes the buffers cover *)
  mutable best : Bytes.t;      (* cap bytes, all-zero between walks *)
  mutable queued : Slice_util.Bits.t;
                               (* dense bitset, all-clear between walks;
                                  mutable so [shrink_scratch] can swap in
                                  a smaller one ([Bits.clear] keeps the
                                  backing store) *)
  mutable ring : int array;    (* cap + 1 slots *)
  mutable touched : int array; (* cap slots; first-visit log *)
}

let create_scratch (g : Sdg.t) : scratch =
  let n = max 1 (Sdg.num_nodes g) in
  { cap = n;
    best = Bytes.make n '\000';
    queued = Slice_util.Bits.create ~capacity:n ();
    ring = Array.make (n + 1) 0;
    touched = Array.make n 0 }

(* Grow-only: the buffers need no clearing because every walk zeroes
   exactly the entries it touched before returning ([queued] grows on
   demand inside [Bits]). *)
let ensure_capacity (s : scratch) (n : int) : unit =
  if s.cap < n then begin
    s.cap <- n;
    s.best <- Bytes.make n '\000';
    s.ring <- Array.make (n + 1) 0;
    s.touched <- Array.make n 0
  end

let scratch_capacity (s : scratch) : int = s.cap

(* Resident footprint of the buffers, in bytes: [best] is one byte per
   node, the ring and touched logs are boxed-free int arrays (8 bytes a
   slot), and [queued] reports its backing words.  Arithmetic over the
   field sizes — never [Obj.reachable_words] — so the figure is
   deterministic across runs and safe to emit in byte-compared output. *)
let scratch_bytes (s : scratch) : int =
  s.cap
  + (8 * Slice_util.Bits.words s.queued)
  + (8 * Array.length s.ring)
  + (8 * Array.length s.touched)

(* The release path for long-lived processes: a one-off mega-program
   query must not pin its peak buffers for the owner's lifetime.  The
   buffers are all-zero between walks, so a rebuild at the smaller size
   preserves every invariant; [keep] is clamped to at least 1, matching
   [create_scratch].  Growing back later is just [ensure_capacity]. *)
let shrink_scratch (s : scratch) ~(keep : int) : unit =
  let n = max 1 keep in
  if s.cap > n then begin
    s.cap <- n;
    s.best <- Bytes.make n '\000';
    s.queued <- Slice_util.Bits.create ~capacity:n ();
    s.ring <- Array.make (n + 1) 0;
    s.touched <- Array.make n 0
  end

(* Reachability keeping, per node, the best (largest) remaining budget at
   which it has been reached: a node reached with more budget left may
   reveal further base-pointer edges.  Backward and forward slicing share
   this walk, parameterised by the adjacency direction.  Entry-unique:
   a budget improvement for a node already in the ring only updates
   [best]; the pending ring entry reads the improved budget at pop. *)
let walk_scratch (scratch : scratch)
    (iter : Sdg.t -> Sdg.node -> (Sdg.node -> Sdg.edge_kind -> unit) -> unit)
    (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
  Slice_obs.bump c_slices;
  let n = Sdg.num_nodes g in
  ensure_capacity scratch n;
  let best = scratch.best and queued = scratch.queued and ring = scratch.ring in
  let touched = scratch.touched in
  let slots = Array.length ring in
  let head = ref 0 and tail = ref 0 and count = ref 0 and peak = ref 0 in
  let tcount = ref 0 in
  let push node budget =
    let b1 = budget + 1 in
    if Char.code (Bytes.unsafe_get best node) < b1 then begin
      if Bytes.unsafe_get best node = '\000' then begin
        (* first visit: log for result emission and buffer reset *)
        Array.unsafe_set touched !tcount node;
        incr tcount
      end;
      Bytes.unsafe_set best node (Char.unsafe_chr b1);
      if Slice_util.Bits.add queued node then begin
        Array.unsafe_set ring !tail node;
        tail := (!tail + 1) mod slots;
        incr count;
        if !count > !peak then peak := !count
      end
    end
  in
  (* [initial_budget] is already clamped to [max_aliasing_budget], which
     fits the byte-wide [best] table (budget + 1 <= 255) *)
  let k0 = initial_budget mode in
  List.iter (fun s -> push s k0) seeds;
  while !count > 0 do
    let node = Array.unsafe_get ring !head in
    head := (!head + 1) mod slots;
    decr count;
    Slice_util.Bits.remove queued node;
    let budget = Char.code (Bytes.unsafe_get best node) - 1 in
    Slice_obs.bump c_nodes_visited;
    iter g node (fun dep kind ->
        match edge_policy mode kind with
        | `Follow ->
          Slice_obs.bump c_edges_followed;
          push dep budget
        | `Costly ->
          if budget > 0 then begin
            Slice_obs.bump c_edges_costly;
            Slice_obs.bump c_budget_spent;
            push dep (budget - 1)
          end
          else Slice_obs.bump c_edges_skipped
        | `Skip -> Slice_obs.bump c_edges_skipped)
  done;
  Slice_obs.max_gauge g_frontier_peak (float_of_int !peak);
  (* [queued] is already all-zero again: every enqueued node was popped.
     Sort the touched prefix (each node appears exactly once) for the
     result, then zero those [best] entries to restore the invariant. *)
  let size = !tcount in
  Slice_obs.observe h_slice_nodes (float_of_int size);
  let result = Array.sub touched 0 size in
  Array.sort (fun (a : int) b -> compare a b) result;
  for i = 0 to size - 1 do
    Bytes.unsafe_set best (Array.unsafe_get touched i) '\000'
  done;
  Array.fold_right (fun x acc -> x :: acc) result []

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

(* Opt-in side tables recorded by [walk_scratch_prov]: per node, the
   discovering parent, the kind of the discovering edge (as a
   [Sdg.edge_kind_tag]), the best remaining aliasing budget on arrival,
   and the BFS layer at FIRST visit.  Validity is a generation stamp
   ([pv_stamp.(n) = pv_gen]), so starting a new recorded walk
   invalidates the previous walk's records in O(1) and the arrays never
   need clearing; like the walk scratch the tables are grow-only and
   owned by one domain at a time, but unlike it they are caller-owned
   and keep their contents AFTER the walk — that is the whole point:
   [witness] and [distance] read them later.

   The discovery record (parent/kind/budget) follows EVERY budget
   improvement, not just the first visit.  That keeps the final parent
   chain replayable under the budget discipline: along the chain the
   recorded budget of a node is what its (final) parent's push computed
   from a budget at least as large as the parent's own recorded one, so
   re-walking the chain never runs out of budget at a `Costly hop.  It
   also makes parent cycles impossible — a record is only overwritten by
   a strictly larger budget, and budgets never increase along a path.
   [pv_dist] stays fixed at first visit, so in budget-free modes (no
   improvements possible) it IS the BFS layer of [Inspect.bfs]. *)
type provenance = {
  mutable pv_cap : int;
  mutable pv_parent : int array;  (* discovering node; -1 at a seed *)
  mutable pv_kind : int array;    (* edge_kind_tag of the discovering edge; -1 at a seed *)
  mutable pv_budget : int array;  (* best remaining budget on arrival *)
  mutable pv_dist : int array;    (* BFS layer at first visit *)
  mutable pv_stamp : int array;   (* entry valid iff = pv_gen *)
  mutable pv_gen : int;
  mutable pv_mode : mode option;  (* mode of the last recorded walk *)
  (* Graph of the last recorded walk and its patch generation then:
     records are node ids into THAT graph at THAT generation, so after
     an incremental update ([Sdg.patch] bumps the generation) every
     provenance query must answer "no record" rather than replay a path
     through retired nodes.  Cleared by [shrink_provenance] (drops the
     graph reference along with the arrays). *)
  mutable pv_graph : (Sdg.t * int) option;
}

let create_provenance (g : Sdg.t) : provenance =
  let n = max 1 (Sdg.num_nodes g) in
  { pv_cap = n;
    pv_parent = Array.make n (-1);
    pv_kind = Array.make n (-1);
    pv_budget = Array.make n 0;
    pv_dist = Array.make n 0;
    pv_stamp = Array.make n 0;
    pv_gen = 0;
    pv_mode = None;
    pv_graph = None }

(* Growth only ever happens at the start of a recorded walk, which then
   bumps [pv_gen] past every (zero) stamp of the fresh arrays, so old
   records need no copying — they are invalidated anyway. *)
let ensure_prov_capacity (p : provenance) (n : int) : unit =
  if p.pv_cap < n then begin
    p.pv_cap <- n;
    p.pv_parent <- Array.make n (-1);
    p.pv_kind <- Array.make n (-1);
    p.pv_budget <- Array.make n 0;
    p.pv_dist <- Array.make n 0;
    p.pv_stamp <- Array.make n 0
  end

let provenance_capacity (p : provenance) : int = p.pv_cap

(* Shrinking also drops the last walk's records (they lived in the large
   arrays), so [pv_mode] is cleared: [prov_member] must answer [false]
   rather than read stale stamps that happen to equal [pv_gen]. *)
let shrink_provenance (p : provenance) ~(keep : int) : unit =
  let n = max 1 keep in
  if p.pv_cap > n then begin
    p.pv_cap <- n;
    p.pv_parent <- Array.make n (-1);
    p.pv_kind <- Array.make n (-1);
    p.pv_budget <- Array.make n 0;
    p.pv_dist <- Array.make n 0;
    p.pv_stamp <- Array.make n 0;
    p.pv_mode <- None;
    p.pv_graph <- None
  end

(* [walk_scratch] with provenance recording.  A separate copy of the loop
   rather than a branch inside [push]: the plain walk is the production
   hot path and must not pay for a feature that is off. *)
let walk_scratch_prov (scratch : scratch) (prov : provenance)
    (iter : Sdg.t -> Sdg.node -> (Sdg.node -> Sdg.edge_kind -> unit) -> unit)
    (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
  Slice_obs.bump c_slices;
  let n = Sdg.num_nodes g in
  ensure_capacity scratch n;
  ensure_prov_capacity prov n;
  prov.pv_gen <- prov.pv_gen + 1;
  prov.pv_mode <- Some mode;
  prov.pv_graph <- Some (g, Sdg.generation g);
  let gen = prov.pv_gen in
  let parent = prov.pv_parent and kindt = prov.pv_kind in
  let budg = prov.pv_budget and dist = prov.pv_dist in
  let stamp = prov.pv_stamp in
  let best = scratch.best and queued = scratch.queued and ring = scratch.ring in
  let touched = scratch.touched in
  let slots = Array.length ring in
  let head = ref 0 and tail = ref 0 and count = ref 0 and peak = ref 0 in
  let tcount = ref 0 in
  let push node budget par ktag =
    let b1 = budget + 1 in
    if Char.code (Bytes.unsafe_get best node) < b1 then begin
      if Bytes.unsafe_get best node = '\000' then begin
        Array.unsafe_set touched !tcount node;
        incr tcount;
        let d = if par < 0 then 0 else Array.unsafe_get dist par + 1 in
        Array.unsafe_set dist node d;
        Array.unsafe_set stamp node gen;
        Slice_obs.observe h_bfs_distance (float_of_int d)
      end;
      Array.unsafe_set parent node par;
      Array.unsafe_set kindt node ktag;
      Array.unsafe_set budg node budget;
      Bytes.unsafe_set best node (Char.unsafe_chr b1);
      if Slice_util.Bits.add queued node then begin
        Array.unsafe_set ring !tail node;
        tail := (!tail + 1) mod slots;
        incr count;
        if !count > !peak then peak := !count
      end
    end
  in
  let k0 = initial_budget mode in
  List.iter (fun s -> push s k0 (-1) (-1)) seeds;
  while !count > 0 do
    let node = Array.unsafe_get ring !head in
    head := (!head + 1) mod slots;
    decr count;
    Slice_util.Bits.remove queued node;
    let budget = Char.code (Bytes.unsafe_get best node) - 1 in
    Slice_obs.bump c_nodes_visited;
    iter g node (fun dep kind ->
        match edge_policy mode kind with
        | `Follow ->
          Slice_obs.bump c_edges_followed;
          push dep budget node (Sdg.edge_kind_tag kind)
        | `Costly ->
          if budget > 0 then begin
            Slice_obs.bump c_edges_costly;
            Slice_obs.bump c_budget_spent;
            push dep (budget - 1) node (Sdg.edge_kind_tag kind)
          end
          else Slice_obs.bump c_edges_skipped
        | `Skip -> Slice_obs.bump c_edges_skipped)
  done;
  Slice_obs.max_gauge g_frontier_peak (float_of_int !peak);
  let size = !tcount in
  Slice_obs.observe h_slice_nodes (float_of_int size);
  let result = Array.sub touched 0 size in
  Array.sort (fun (a : int) b -> compare a b) result;
  for i = 0 to size - 1 do
    Bytes.unsafe_set best (Array.unsafe_get touched i) '\000'
  done;
  Array.fold_right (fun x acc -> x :: acc) result []

(* A node has a valid record iff a recorded walk has run ([pv_mode]
   guards the fresh-provenance case where every zero stamp would equal
   the zero generation), the node was stamped by the LAST one, and the
   graph has not been patched since — a witness captured before an
   incremental update could otherwise replay through retired nodes. *)
let prov_member (p : provenance) (node : Sdg.node) : bool =
  p.pv_mode <> None
  && (match p.pv_graph with
     | Some (g, gen) -> Sdg.generation g = gen
     | None -> false)
  && node >= 0
  && node < p.pv_cap
  && p.pv_stamp.(node) = p.pv_gen

let provenance_mode (p : provenance) : mode option = p.pv_mode

let distance (p : provenance) (node : Sdg.node) : int option =
  if prov_member p node then Some p.pv_dist.(node) else None

type witness_step = {
  wit_node : Sdg.node;
  wit_kind : Sdg.edge_kind option;
      (* edge from the PREVIOUS step to this one; None at the seed *)
  wit_budget : int;  (* remaining aliasing budget on arrival *)
  wit_dist : int;    (* BFS layer at first visit *)
}

(* Reconstruct the dependence path seed -> [node] by reversing the parent
   chain.  Each step depends on the NEXT one via the next step's
   [wit_kind] (the walk traverses dependences backwards, so the parent is
   always one hop closer to the seed). *)
let witness (p : provenance) (node : Sdg.node) : witness_step list option =
  if not (prov_member p node) then None
  else begin
    let rec build n acc =
      let ktag = p.pv_kind.(n) in
      let step =
        { wit_node = n;
          wit_kind = (if ktag < 0 then None else Some (Sdg.edge_kind_of_tag ktag));
          wit_budget = p.pv_budget.(n);
          wit_dist = p.pv_dist.(n) }
      in
      let par = p.pv_parent.(n) in
      if par < 0 then step :: acc else build par (step :: acc)
    in
    Some (build node [])
  end

(* One scratch per DOMAIN, lazily created and grown, shared by all slices
   in that domain that do not pass an explicit [?scratch]: within a
   domain slicing is not re-entrant (edge callbacks never start another
   walk), so a single buffer set suffices and per-slice allocation stays
   O(slice).  The cell lives in [Domain.DLS] — the old process-global
   [shared_scratch] was a correctness bug the moment two domains sliced
   concurrently (both walks would interleave writes into the same [best]
   table).  A parallel batch executor can either rely on this per-domain
   default or thread explicit [create_scratch] handles. *)
let dls_scratch : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get_scratch (g : Sdg.t) : scratch =
  let cell = Domain.DLS.get dls_scratch in
  match !cell with
  | Some s ->
    ensure_capacity s (Sdg.num_nodes g);
    s
  | None ->
    let s = create_scratch g in
    cell := Some s;
    s

(* Capacity/shrink for the calling domain's implicit scratch: a daemon
   that slices through the DLS default (no explicit [?scratch]) needs a
   handle-free release path when it evicts a large program. *)
let domain_scratch_capacity () : int =
  match !(Domain.DLS.get dls_scratch) with
  | Some s -> s.cap
  | None -> 0

let domain_scratch_bytes () : int =
  match !(Domain.DLS.get dls_scratch) with
  | Some s -> scratch_bytes s
  | None -> 0

let shrink_domain_scratch ~(keep : int) : unit =
  match !(Domain.DLS.get dls_scratch) with
  | Some s -> shrink_scratch s ~keep
  | None -> ()

(* Resolve the scratch an entry point walks on: the caller's explicit
   handle (grown to fit [g]) if given, else the calling domain's shared
   one. *)
let resolve_scratch ?scratch (g : Sdg.t) : scratch =
  let s =
    match scratch with
    | Some s ->
      ensure_capacity s (max 1 (Sdg.num_nodes g));
      s
    | None -> get_scratch g
  in
  (* Peak gauge, recorded when the walk resolves its buffers: a memory
     figure per domain registry, merged by [Slice_obs.merge_snapshot]
     in parallel executors. *)
  Slice_obs.max_gauge g_scratch_bytes (float_of_int (scratch_bytes s));
  s

(* The walk function an entry point runs: the plain hot path, or the
   provenance-recording copy when the caller passed a [?prov] handle. *)
let walk_for ?prov scratch iter g ~seeds mode =
  match prov with
  | None -> walk_scratch scratch iter g ~seeds mode
  | Some p -> walk_scratch_prov scratch p iter g ~seeds mode

(* Per-query span annotations: the mode up front, the result size once
   known — this is what makes a Chrome trace attributable to a QUERY
   instead of a row of anonymous "slicer.slice" bars. *)
let annotate_size (result : Sdg.node list) : Sdg.node list =
  if Slice_obs.enabled () then
    Slice_obs.add_span_arg "nodes" (string_of_int (List.length result));
  result

let slice ?scratch ?prov (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    Sdg.node list =
  Slice_obs.span
    ~args:[ ("mode", mode_to_string mode) ]
    "slicer.slice"
    (fun () ->
      annotate_size
        (walk_for ?prov (resolve_scratch ?scratch g) Sdg.deps_iter g ~seeds
           mode))

(* Forward slicing: which statements CONSUME the value a seed produces?
   Same edge discipline as backward slicing, traversed over use-edges.
   Useful for impact analysis ("if I change this line, which outputs can
   move?") — the dual of the paper's backward producer chains. *)
let forward_slice ?scratch ?prov (g : Sdg.t) ~(seeds : Sdg.node list)
    (mode : mode) : Sdg.node list =
  Slice_obs.span
    ~args:[ ("mode", mode_to_string mode) ]
    "slicer.forward"
    (fun () ->
      annotate_size
        (walk_for ?prov (resolve_scratch ?scratch g) Sdg.uses_iter g ~seeds
           mode))

(* Many slices over one (frozen) graph, one scratch allocation.  The
   per-seed walks reuse the byte arrays and the ring; only the result
   lists are fresh. *)
let slice_batch ?scratch (g : Sdg.t) ~(seeds_list : Sdg.node list list)
    (mode : mode) : Sdg.node list list =
  Slice_obs.span "slicer.slice_batch" (fun () ->
      let scratch = resolve_scratch ?scratch g in
      List.map
        (fun seeds -> walk_scratch scratch Sdg.deps_iter g ~seeds mode)
        seeds_list)

let forward_slice_batch ?scratch (g : Sdg.t) ~(seeds_list : Sdg.node list list)
    (mode : mode) : Sdg.node list list =
  (* own span name: this used to record as "slicer.slice_batch", folding
     forward-batch walks into the backward-batch phase total *)
  Slice_obs.span "slicer.forward_batch" (fun () ->
      let scratch = resolve_scratch ?scratch g in
      List.map
        (fun seeds -> walk_scratch scratch Sdg.uses_iter g ~seeds mode)
        seeds_list)

(* Intersection of two sorted-unique node lists: order-independent by
   construction ([inter a b = inter b a]) and sorted-unique output. *)
let inter_sorted (a : Sdg.node list) (b : Sdg.node list) : Sdg.node list =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
      if x < y then go a' b acc
      else if y < x then go a b' acc
      else go a' b' (x :: acc)
  in
  go a b []

(* A (thin) chop: the statements on producer paths from [source] to
   [sink] — how does the value get from here to there?  Both walks emit
   sorted-unique lists, so the merge intersection is symmetric: chopping
   never depends on which walk the membership table was built from (the
   old implementation filtered the backward walk through a Hashtbl of the
   forward walk only). *)
let chop (g : Sdg.t) ~(source : Sdg.node list) ~(sink : Sdg.node list)
    (mode : mode) : Sdg.node list =
  let forward = forward_slice g ~seeds:source mode in
  let backward = slice g ~seeds:sink mode in
  inter_sorted forward backward

(* Distinct source locations of countable nodes, the granularity a user
   reads. *)
let nodes_to_lines (g : Sdg.t) (nodes : Sdg.node list) : Slice_ir.Loc.t list =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun n ->
      if Sdg.node_countable g n then begin
        let loc = Sdg.node_loc g n in
        let key = (loc.Slice_ir.Loc.file, loc.Slice_ir.Loc.line) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := loc :: !out
        end
      end)
    nodes;
  List.sort Slice_ir.Loc.compare !out

let slice_lines (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Slice_ir.Loc.t list =
  nodes_to_lines g (slice g ~seeds mode)

(* Distinct line NUMBERS of a location list.  [nodes_to_lines] dedups per
   (file, line); once the file component is projected away, two files
   sharing a line number would otherwise yield the same int twice (the
   multi-file duplicate-line bug). *)
let locs_to_line_numbers (locs : Slice_ir.Loc.t list) : int list =
  List.sort_uniq compare (List.map (fun l -> l.Slice_ir.Loc.line) locs)

let slice_line_numbers (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    int list =
  locs_to_line_numbers (slice_lines g ~seeds mode)

(* ------------------------------------------------------------------ *)
(* Reference implementation (the seed algorithm)                       *)
(* ------------------------------------------------------------------ *)

(* The pre-CSR walk, verbatim: Hashtbl visited/budget table, stdlib
   Queue with stale-entry re-enqueues, and a polymorphic-compare sort of
   the result.  Runs over the adjacency-list shims, so it behaves
   identically on frozen and unfrozen graphs (though it allocates rows
   on a frozen one).  It bumps no telemetry: it exists to pin down the
   CSR walk's semantics (parity property tests) and as the A side of the
   BENCH A/B. *)
module Reference = struct
  let walk (next : Sdg.t -> Sdg.node -> (Sdg.node * Sdg.edge_kind) list)
      (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
    let best : (Sdg.node, int) Hashtbl.t = Hashtbl.create 256 in
    let queue = Queue.create () in
    let push n budget =
      match Hashtbl.find_opt best n with
      | Some b when b >= budget -> ()
      | Some _ | None ->
        Hashtbl.replace best n budget;
        Queue.add (n, budget) queue
    in
    List.iter (fun s -> push s (initial_budget mode)) seeds;
    while not (Queue.is_empty queue) do
      let n, budget = Queue.pop queue in
      (* stale entries: a better budget may have been recorded since *)
      if Hashtbl.find_opt best n = Some budget then
        List.iter
          (fun (dep, kind) ->
            match edge_policy mode kind with
            | `Follow -> push dep budget
            | `Costly -> if budget > 0 then push dep (budget - 1)
            | `Skip -> ())
          (next g n)
    done;
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) best [])

  let slice g ~seeds mode = walk Sdg.deps g ~seeds mode
  let forward_slice g ~seeds mode = walk Sdg.uses g ~seeds mode

  let slice_lines g ~seeds mode = nodes_to_lines g (slice g ~seeds mode)
end
