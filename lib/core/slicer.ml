(* Backward slicing as graph reachability over the classified SDG
   (paper, section 5.2).

   The mode selects which dependence edges are followed:
   - [Thin]: producer edges only — the thin slice;
   - [Thin_with_aliasing k]: additionally crosses up to [k] base-pointer or
     index edges along any path, the controlled one-level aliasing
     expansion used for nanoxml-5 in the evaluation (section 6.2);
   - [Traditional_data]: all flow dependences including base pointers and
     indices, no control — the "traditional data slicer" the paper
     compares against;
   - [Traditional_full]: also follows control dependences. *)

type mode =
  | Thin
  | Thin_with_aliasing of int
  | Traditional_data
  | Traditional_full

(* Telemetry: traversal effort (shared by backward and forward walks). *)
let c_nodes_visited = Slice_obs.counter "slicer.nodes_visited"
let c_edges_followed = Slice_obs.counter "slicer.edges_followed"
let c_edges_skipped = Slice_obs.counter "slicer.edges_skipped"
let c_edges_costly = Slice_obs.counter "slicer.edges_costly"
let c_budget_spent = Slice_obs.counter "slicer.budget_spent"
let c_slices = Slice_obs.counter "slicer.slices_computed"
let g_frontier_peak = Slice_obs.gauge "slicer.frontier_peak"
let h_slice_nodes = Slice_obs.histogram "slicer.slice_nodes"

let mode_to_string = function
  | Thin -> "thin"
  | Thin_with_aliasing k -> Printf.sprintf "thin+alias%d" k
  | Traditional_data -> "traditional-data"
  | Traditional_full -> "traditional-full"

(* Which edges may be followed, and at what base-pointer budget cost. *)
let edge_policy (mode : mode) (kind : Sdg.edge_kind) : [ `Follow | `Costly | `Skip ]
    =
  match (mode, kind) with
  | _, (Sdg.Producer_local | Sdg.Producer_heap | Sdg.Param_in | Sdg.Return_value)
    -> `Follow
  | Thin, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control) -> `Skip
  | Thin_with_aliasing _, (Sdg.Base_pointer | Sdg.Index) -> `Costly
  | Thin_with_aliasing _, (Sdg.Call_actual | Sdg.Control) -> `Skip
  | Traditional_data, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual) -> `Follow
  | Traditional_data, Sdg.Control -> `Skip
  | Traditional_full, (Sdg.Base_pointer | Sdg.Index | Sdg.Call_actual | Sdg.Control)
    -> `Follow

let initial_budget = function
  | Thin | Traditional_data | Traditional_full -> 0
  | Thin_with_aliasing k -> max 0 k

(* Reachability keeping, per node, the best (largest) remaining budget at
   which it has been visited: a node reached with more budget left may
   reveal further base-pointer edges.  Backward and forward slicing share
   this walk, parameterised by the adjacency direction. *)
let walk (next : Sdg.t -> Sdg.node -> (Sdg.node * Sdg.edge_kind) list)
    (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
  Slice_obs.bump c_slices;
  let best : (Sdg.node, int) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let peak = ref 0 in
  let push n budget =
    match Hashtbl.find_opt best n with
    | Some b when b >= budget -> ()
    | Some _ | None ->
      Hashtbl.replace best n budget;
      Queue.add (n, budget) queue;
      let len = Queue.length queue in
      if len > !peak then peak := len
  in
  List.iter (fun s -> push s (initial_budget mode)) seeds;
  while not (Queue.is_empty queue) do
    let n, budget = Queue.pop queue in
    (* stale entries: a better budget may have been recorded since *)
    if Hashtbl.find_opt best n = Some budget then begin
      Slice_obs.bump c_nodes_visited;
      List.iter
        (fun (dep, kind) ->
          match edge_policy mode kind with
          | `Follow ->
            Slice_obs.bump c_edges_followed;
            push dep budget
          | `Costly ->
            if budget > 0 then begin
              Slice_obs.bump c_edges_costly;
              Slice_obs.bump c_budget_spent;
              push dep (budget - 1)
            end
            else Slice_obs.bump c_edges_skipped
          | `Skip -> Slice_obs.bump c_edges_skipped)
        (next g n)
    end
  done;
  Slice_obs.max_gauge g_frontier_peak (float_of_int !peak);
  let out =
    List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) best [])
  in
  Slice_obs.observe h_slice_nodes (float_of_int (List.length out));
  out

let slice (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Sdg.node list =
  Slice_obs.span "slicer.slice" (fun () -> walk Sdg.deps g ~seeds mode)

(* Forward slicing: which statements CONSUME the value a seed produces?
   Same edge discipline as backward slicing, traversed over use-edges.
   Useful for impact analysis ("if I change this line, which outputs can
   move?") — the dual of the paper's backward producer chains. *)
let forward_slice (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    Sdg.node list =
  Slice_obs.span "slicer.forward" (fun () -> walk Sdg.uses g ~seeds mode)

(* A (thin) chop: the statements on producer paths from [source] to
   [sink] — how does the value get from here to there? *)
let chop (g : Sdg.t) ~(source : Sdg.node list) ~(sink : Sdg.node list)
    (mode : mode) : Sdg.node list =
  let forward = forward_slice g ~seeds:source mode in
  let backward = slice g ~seeds:sink mode in
  let fwd = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace fwd n ()) forward;
  List.filter (fun n -> Hashtbl.mem fwd n) backward

(* Slice contents as distinct source locations of countable nodes, the
   granularity a user reads. *)
let slice_lines (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) : Slice_ir.Loc.t list =
  let nodes = slice g ~seeds mode in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun n ->
      if Sdg.node_countable g n then begin
        let loc = Sdg.node_loc g n in
        let key = (loc.Slice_ir.Loc.file, loc.Slice_ir.Loc.line) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := loc :: !out
        end
      end)
    nodes;
  List.sort Slice_ir.Loc.compare !out

let slice_line_numbers (g : Sdg.t) ~(seeds : Sdg.node list) (mode : mode) :
    int list =
  List.map (fun l -> l.Slice_ir.Loc.line) (slice_lines g ~seeds mode)
