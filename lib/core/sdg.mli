(** The dependence-graph representation shared by both slicers: a variant
    of the system dependence graph [11] in which

    - nodes are statements qualified by the points-to analysis context of
      their method, so container methods cloned per receiver object appear
      once per clone (as in WALA's CGNode-based SDG);
    - every dependence edge is classified, so that thin slicing can follow
      only producer edges (paper, section 3) while traditional slicing
      also follows base-pointer, index, statement-closure and control
      edges;
    - heap dependences are direct store-to-load edges computed from the
      points-to result — the scalable context-insensitive representation
      of section 5.2.  The heap-parameter representation for the
      context-sensitive algorithm lives in {!Tabulation}.

    Edges are stored backwards: [deps g n] lists what [n] depends on,
    the direction slicing traverses; [uses g n] is the forward view. *)

open Slice_ir
open Slice_pta

type edge_kind =
  | Producer_local  (** SSA def-use, value position *)
  | Producer_heap   (** field/array/static store -> may-aliased load *)
  | Param_in        (** formal -> actual argument definition *)
  | Return_value    (** call -> return statement of callee *)
  | Base_pointer    (** def-use into a dereferenced base pointer *)
  | Index           (** def-use into an array index *)
  | Call_actual
      (** call statement -> its actual-in nodes.  Not value flow: a
          Weiser-style (executable) slice containing a call must also
          compute the call's arguments; thin slicing's relevance notion
          drops exactly this closure. *)
  | Control         (** control dependence *)

(** Producer edges are the ones a thin slice follows (paper, section 3). *)
val is_producer : edge_kind -> bool

val edge_kind_to_string : edge_kind -> string

(** Edge kinds as dense int tags [0..7] (the packed CSR encoding) and the
    inverse table.  Exposed so flat side tables — the slicer's provenance
    scratch, JSON encoders — can store kinds unboxed.
    [edge_kind_of_tag] raises [Invalid_argument] outside [0..7]. *)
val edge_kind_tag : edge_kind -> int

val edge_kind_of_tag : int -> edge_kind

type node_desc =
  | Stmt of int * Instr.stmt_id  (** method context, statement *)
  | Formal of int * int          (** method context, parameter index *)
  | Actual_in of int * Instr.stmt_id * int
      (** the i-th actual argument of a call statement; belongs to the
          call statement for display, so a call through which a value
          flows appears in the slice (like line 17 of the paper's
          Figure 1) *)

type node = int
type t

(** Build the graph for every reachable method context.
    [include_control:false] skips control-dependence edges (the thin
    slicer never follows them; useful for memory-lean configurations).

    [arena] supplies the flat int-indexed IR view ({!Arena.build}); when
    present, pass 1 walks packed arena columns instead of the record IR
    — same edges in the same order, pinned by the equivalence tests —
    which is the memory/speed diet for 10^5-10^6-statement programs.

    [heap_jobs] shards the pass-3 heap-wiring candidate pairs across
    that many OCaml domains (default: up to 4 when
    [Domain.recommended_domain_count () > 1], else sequential).  Every
    shard dedups into its own bitset rows; rows are merged by set union
    and emitted in sorted (write node, read node) order, so the
    resulting adjacency is identical at every shard count.

    The graph comes back mutable (list-array adjacency); call {!freeze}
    to compact it before slicing heavily. *)
val build :
  ?include_control:bool ->
  ?arena:Arena.t ->
  ?heap_jobs:int ->
  Program.t ->
  Andersen.result ->
  t

(** Compact the mutable list-array adjacency into an immutable CSR
    layout (flat [int] arrays [deps_off]/[deps_dst]/[deps_kind] plus the
    forward mirror, edge kinds packed as tagged ints) and release the
    mutable representation.  After freezing, {!deps_iter}/{!uses_iter}
    run allocation-free over the flat arrays and the graph rejects
    further [add_edge]/interning ([Invalid_argument]).  Idempotent;
    recorded under the ["sdg.freeze"] telemetry span with
    [sdg.csr_nodes]/[sdg.csr_edges] counters and an [sdg.csr_bytes]
    footprint gauge. *)
val freeze : t -> unit

val is_frozen : t -> bool

(** Number of (backward) dependence edges in the graph. *)
val num_edges : t -> int

val program : t -> Program.t
val pta : t -> Andersen.result
val stmt_table : t -> (Instr.stmt_id, Program.stmt_info) Hashtbl.t

val node_desc : t -> node -> node_desc
val num_nodes : t -> int
val find_node : t -> node_desc -> node option

(** Backward adjacency iteration: the nodes [n] depends on.  The hot-path
    accessor — allocation-free on a frozen graph; falls back to the
    mutable lists before {!freeze}. *)
val deps_iter : t -> node -> (node -> edge_kind -> unit) -> unit

(** Forward adjacency iteration: the nodes that depend on [n]. *)
val uses_iter : t -> node -> (node -> edge_kind -> unit) -> unit

(** Backward adjacency: the nodes [n] depends on.  Compatibility shim —
    identical contents/order before and after {!freeze}, but allocates a
    fresh list per call on a frozen graph; prefer {!deps_iter}. *)
val deps : t -> node -> (node * edge_kind) list

(** Forward adjacency: the nodes that depend on [n] (shim; prefer
    {!uses_iter}). *)
val uses : t -> node -> (node * edge_kind) list

(** Source location of a node ([Loc.none] for formals). *)
val node_loc : t -> node -> Loc.t

val node_stmt : t -> node -> Instr.stmt_id option

(** Statements a user would read: real instructions with a source
    location, excluding phis and compiler-internal statements. *)
val node_countable : t -> node -> bool

val pp_node : t -> Format.formatter -> node -> unit

(** All statement nodes whose source line matches. *)
val nodes_at_line : t -> file:string option -> line:int -> node list

(** Distinct statement ids appearing as nodes (context clones counted
    once) — the paper's Table 1 "SDG Statements". *)
val num_scalar_statements : t -> int

(** {2 Incremental patching}

    After an incremental re-lower of a few method bodies (see
    {!Delta}/{!Engine}), the frozen graph can be PATCHED in place rather
    than rebuilt: the changed methods' statement-bound nodes are retired
    (ids never reused, so resident scratch and provenance buffers stay
    valid), their [Formal] nodes survive (signatures are stable under
    the summary-equality precondition, so caller-side edges hold), the
    shared per-method passes re-run over just the new bodies, new heap
    accesses wire against the retained access index, and the touched
    rows are committed as overlays over the immutable CSR.  Row lookup
    on a patched graph checks the overlay first — one extra branch, paid
    only after the first patch. *)

type patch_stats = {
  ps_nodes_dead : int;        (** nodes retired by this patch *)
  ps_nodes_new : int;         (** nodes interned for the new bodies *)
  ps_rows_touched : int;      (** adjacency rows rewritten (either direction) *)
  ps_segments_refrozen : int; (** method contexts whose rows moved *)
  ps_segments_total : int;    (** reachable method contexts *)
}

(** Patch a frozen graph onto re-lowered method bodies.  Preconditions
    (the [Engine] P0 path establishes them): the program already holds
    the new bodies, each changed method's constraint summary is
    unchanged, and the points-to result was re-keyed with
    {!Andersen.rekey_sites} using the same [site_remap].
    Raises [Invalid_argument] if the graph is not frozen. *)
val patch :
  t ->
  changed:Instr.method_qname list ->
  site_remap:(Instr.stmt_id -> Instr.stmt_id option) ->
  patch_stats

(** Number of committed patches — provenance captured against an older
    generation refuses to answer (see {!Slicer}). *)
val generation : t -> int

(** Node retired by a patch?  Dead nodes keep their ids but have empty
    rows and no statement-table entry. *)
val is_dead : t -> node -> bool

(** [num_nodes] minus retired nodes — the node count a patched handle
    reports. *)
val num_live_nodes : t -> int

(** Census of live edges by kind, computed from the graph itself (the
    process-wide build counters overcount after a patch). *)
val edge_kind_counts : t -> (edge_kind * int) list

(** GraphViz export; producer edges solid, explainer edges dashed/dotted
    (the paper's Figure 3 conventions).  [?witness] overlays a dependence
    path as consecutive [(node, arrival_kind)] steps — seed first, [None]
    kind at the seed, each later step carrying the kind of the edge from
    its predecessor: path nodes and exactly those hop edges are
    highlighted red/bold, which is how [thinslice explain --dot] renders
    a {!Slicer.witness} on top of the full graph. *)
val to_dot : ?witness:(node * edge_kind option) list -> t -> string
