(** The paper's evaluation metric (section 6.1): simulate a user exploring
    the dependence graph outward from the seed in breadth-first order (as
    with CodeSurfer-style browsing [19]) and count how many distinct
    source statements she inspects before discovering all the desired
    statements.

    Counting is at source-line granularity; synthetic nodes (formals,
    phis, gotos) are traversed but not counted. *)

type report = {
  inspected : int;  (** statements read until all desired were found *)
  found : bool;     (** were all desired statements discovered? *)
  slice_size : int; (** total statements in the full slice *)
  order : (string * int) list;
      (** (file, line) in inspection order, for debugging metrics *)
  order_depths : int list;
      (** the BFS layer each counted line first appears in, parallel to
          [order] — in budget-free modes this is exactly the
          {!Slicer.distance} provenance rank of the line's closest
          countable node *)
}

val pp_report : Format.formatter -> report -> unit

(** [bfs g ~seeds ~desired mode] explores from [seeds] under [mode]'s edge
    discipline (see {!Slicer.edge_policy}), layer by layer, and stops once
    every line in [desired] has been seen.  If some desired line is not
    reachable, [found] is false and [inspected] covers the whole slice. *)
val bfs :
  Sdg.t -> seeds:Sdg.node list -> desired:int list -> Slicer.mode -> report
