(* Slice-as-a-service: the [thinslice serve] daemon core.

   The protocol layer is deliberately thin: parse a request line with
   the existing hand-rolled JSON module, resolve the program (LRU cache
   keyed by source digest x sensitivity x solver), build an
   [Engine.query], and let [Engine.run_query] / [query_result_to_json]
   do the work — the very same code path the one-shot CLI runs, which
   is what makes serve-vs-CLI byte parity structural rather than
   tested-for.  Long-lived-process hygiene lives here too: each request
   runs under [Slice_obs.scoped] (per-query phase walls), completed
   spans are dropped afterwards ([reset_spans] — the registry must stay
   O(1) over N queries), and LRU eviction shrinks the domain's walk
   scratch back to the largest surviving program. *)

open Slice_core
module Json = Slice_obs.Json

let protocol_version = "thinslice.serve/v1"

type config = {
  max_programs : int;
  jobs : int;
}

let default_config = { max_programs = 8; jobs = 1 }

type entry = {
  e_key : string;
  e_handle : Engine.handle;
}

(* MRU-first association list: [max_programs] is a handful of resident
   analyses (each holding a full SDG), so O(n) touch/evict is noise
   next to even a cache-hit slice query. *)
type state = {
  cfg : config;
  mutable entries : entry list;
}

let create_state (cfg : config) : state =
  { cfg = { cfg with max_programs = max 1 cfg.max_programs }; entries = [] }

let cache_keys (st : state) : string list =
  List.map (fun e -> e.e_key) st.entries

let solver_name = function `Bitset -> "bitset" | `Reference -> "reference"

(* The digest folds every (file, source) pair, so a one-byte edit to
   ANY unit of a multi-file program changes the key — which is what
   makes [update] safe to key the patched entry under the new digest.
   A singleton list hashes to the same key as the historical single-file
   form. *)
let program_key_sources ?(obj_sens = true) ?(solver = `Bitset)
    (sources : (string * string) list) : string =
  let payload =
    String.concat "\x01" (List.map (fun (f, s) -> f ^ "\x00" ^ s) sources)
  in
  Printf.sprintf "%s:%s:%s"
    (Digest.to_hex (Digest.string payload))
    (if obj_sens then "objsens" else "no-objsens")
    (solver_name solver)

let program_key ?obj_sens ?solver ~(file : string) (src : string) : string =
  program_key_sources ?obj_sens ?solver [ (file, src) ]

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

(* Structured failure of one request.  The codes mirror JSON-RPC for
   protocol-level problems and the CLI exit-code contract for the rest:
   1 = user/analysis error (unloadable program, no statement at a line,
   evicted program key), 2 = unexpected internal error. *)
exception Err of int * string

let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let user_error = 1
let internal_error = 2

let errf code fmt = Printf.ksprintf (fun m -> raise (Err (code, m))) fmt

(* ------------------------------------------------------------------ *)
(* Param helpers                                                       *)
(* ------------------------------------------------------------------ *)

let params_of (req : Json.t) : Json.t =
  match Json.member "params" req with
  | None -> Json.Obj []
  | Some (Json.Obj _ as p) -> p
  | Some _ -> errf invalid_params "params must be an object"

let opt_str params name =
  match Json.member name params with
  | None | Some Json.Null -> None
  | Some (Json.Str s) -> Some s
  | Some _ -> errf invalid_params "%s must be a string" name

let opt_int params name =
  match Json.member name params with
  | None | Some Json.Null -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> errf invalid_params "%s must be an integer" name

let req_int params name =
  match opt_int params name with
  | Some i -> i
  | None -> errf invalid_params "missing required param %s" name

let opt_bool params name ~default =
  match Json.member name params with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> errf invalid_params "%s must be a boolean" name

let mode_of params =
  match opt_str params "mode" with
  | None -> Slicer.Thin
  | Some s -> (
    match Slicer.mode_of_string s with
    | Some m -> m
    | None -> errf invalid_params "unknown mode %s" s)

let solver_of params =
  match opt_str params "solver" with
  | None -> `Bitset
  | Some "bitset" -> `Bitset
  | Some ("reference" | "ref") -> `Reference
  | Some s -> errf invalid_params "unknown solver %s" s

(* Inline sources of a request: a single ["source"] (+ optional
   ["file"]), or a multi-file ["sources"] array of {file, source}
   objects.  Duplicate paths are a code-1 user error, not a crash: the
   frontend would otherwise let one unit silently shadow the other. *)
let sources_of (params : Json.t) : (string * string) list option =
  match Json.member "sources" params with
  | Some (Json.List items) ->
    if items = [] then errf invalid_params "sources must be non-empty";
    let one = function
      | Json.Obj _ as o -> (
        let str name =
          match Json.member name o with
          | Some (Json.Str s) -> Some s
          | None | Some Json.Null -> None
          | Some _ -> errf invalid_params "sources entry %s must be a string" name
        in
        match (str "file", str "source") with
        | Some f, Some s -> (f, s)
        | None, _ -> errf invalid_params "sources entries need a \"file\""
        | _, None -> errf invalid_params "sources entries need a \"source\"")
      | _ -> errf invalid_params "sources must be an array of objects"
    in
    let sources = List.map one items in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (f, _) ->
        if Hashtbl.mem seen f then errf user_error "duplicate source path: %s" f;
        Hashtbl.replace seen f ())
      sources;
    Some sources
  | Some _ -> errf invalid_params "sources must be an array"
  | None -> (
    match opt_str params "source" with
    | None -> None
    | Some src ->
      let file = Option.value (opt_str params "file") ~default:"<request>" in
      Some [ (file, src) ])

(* ------------------------------------------------------------------ *)
(* The program cache                                                   *)
(* ------------------------------------------------------------------ *)

let find_entry (st : state) (key : string) : entry option =
  List.find_opt (fun e -> e.e_key = key) st.entries

let touch (st : state) (e : entry) : unit =
  st.entries <- e :: List.filter (fun x -> x.e_key <> e.e_key) st.entries

(* Release walk-scratch memory down to the largest RESIDENT program:
   without this, one mega-program query pins its peak buffers for the
   daemon's lifetime.  Shared by eviction and by [update] (an edit can
   shrink a program just as surely as an eviction can drop one). *)
let shrink_to_residents (st : state) : unit =
  let keep_nodes =
    List.fold_left
      (fun acc e ->
        max acc (Sdg.num_nodes e.e_handle.Engine.h_analysis.Engine.sdg))
      1 st.entries
  in
  Slicer.shrink_domain_scratch ~keep:keep_nodes

let insert (st : state) (e : entry) : unit =
  st.entries <- e :: st.entries;
  if List.length st.entries > st.cfg.max_programs then begin
    let rec split i = function
      | [] -> ([], [])
      | x :: rest ->
        if i = 0 then ([], x :: rest)
        else
          let keep, drop = split (i - 1) rest in
          (x :: keep, drop)
    in
    let keep, drop = split st.cfg.max_programs st.entries in
    st.entries <- keep;
    ignore drop;
    shrink_to_residents st
  end

(* Resolve the program a request addresses: an explicit resident key
   (hit or error — a daemon must not silently reload a program it no
   longer has the source of), or an inline source (hit on digest match,
   load on miss). *)
let resolve_program (st : state) (params : Json.t) : entry * [ `Hit | `Miss ]
    =
  match Json.member "program" params with
  | Some (Json.Str key) -> (
    match find_entry st key with
    | Some e ->
      touch st e;
      (e, `Hit)
    | None -> errf user_error "program not resident: %s" key)
  | Some _ -> errf invalid_params "program must be a string key"
  | None -> (
    match sources_of params with
    | None ->
      errf invalid_params
        "request needs \"program\", \"source\" or \"sources\""
    | Some sources -> (
      let obj_sens = opt_bool params "obj_sens" ~default:true in
      let solver = solver_of params in
      let key = program_key_sources ~obj_sens ~solver sources in
      match find_entry st key with
      | Some e ->
        touch st e;
        (e, `Hit)
      | None ->
        let handle =
          try Engine.load ~obj_sens ~solver sources
          with Slice_front.Frontend.Error e ->
            errf user_error "%s" (Slice_front.Frontend.error_to_string e)
        in
        let e = { e_key = key; e_handle = handle } in
        insert st e;
        (e, `Miss)))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

type dispatched = {
  d_result : Json.t;
  d_tel : (string * Json.t) list;  (* cache/program telemetry fields *)
  d_stop : bool;
}

let cache_tel (e : entry) hit =
  [ ("cache", Json.Str (match hit with `Hit -> "hit" | `Miss -> "miss"));
    ("program", Json.Str e.e_key) ]

let query_of_method (mname : string) (params : Json.t) : Engine.query option =
  match mname with
  | "slice" ->
    Some
      (Engine.Q_slice
         { line = req_int params "line"; mode = mode_of params;
           forward = false })
  | "forward" ->
    Some
      (Engine.Q_slice
         { line = req_int params "line"; mode = mode_of params;
           forward = true })
  | "chop" ->
    Some
      (Engine.Q_chop
         { line = req_int params "line"; sink_line = req_int params "to";
           mode = mode_of params })
  | "expand" -> Some (Engine.Q_expand { line = req_int params "line" })
  | "explain" ->
    Some
      (Engine.Q_explain
         { seed_line = req_int params "seed"; line = req_int params "line";
           mode = mode_of params })
  | "report" ->
    Some (Engine.Q_report { line = req_int params "line"; mode = mode_of params })
  | "stats" -> Some Engine.Q_stats
  | _ -> None

let dispatch (st : state) (req : Json.t) : dispatched =
  let mname =
    match Json.member "method" req with
    | Some (Json.Str m) -> m
    | Some _ -> errf invalid_request "method must be a string"
    | None -> errf invalid_request "missing method"
  in
  match mname with
  | "shutdown" ->
    { d_result = Json.Obj [ ("ok", Json.Bool true) ]; d_tel = []; d_stop = true }
  | "load" ->
    let params = params_of req in
    let e, hit = resolve_program st params in
    { d_result = Json.Obj [ ("program", Json.Str e.e_key) ];
      d_tel = cache_tel e hit;
      d_stop = false }
  | "update" ->
    (* Edit a RESIDENT program in place: the entry is re-keyed under the
       new sources' digest (so digest-addressed requests still behave)
       but its analysis is patched, not rebuilt, whenever the delta
       allows — the path taken is reported back. *)
    let params = params_of req in
    let e =
      match Json.member "program" params with
      | Some (Json.Str key) -> (
        match find_entry st key with
        | Some e -> e
        | None -> errf user_error "program not resident: %s" key)
      | Some _ -> errf invalid_params "program must be a string key"
      | None -> errf invalid_params "update needs a \"program\" key"
    in
    let sources =
      match sources_of params with
      | Some s -> s
      | None -> errf invalid_params "update needs \"source\" or \"sources\""
    in
    let h = e.e_handle in
    let h', report =
      try Engine.update h sources
      with Slice_front.Frontend.Error fe ->
        errf user_error "%s" (Slice_front.Frontend.error_to_string fe)
    in
    let key' =
      program_key_sources ~obj_sens:h.Engine.h_obj_sens
        ~solver:h.Engine.h_solver sources
    in
    let e' = { e_key = key'; e_handle = h' } in
    st.entries <-
      e'
      :: List.filter
           (fun x -> x.e_key <> e.e_key && x.e_key <> key')
           st.entries;
    (* Mirror the eviction path: a shrinking edit must release the
       daemon's walk scratch, not pin the pre-edit high-water mark. *)
    shrink_to_residents st;
    let path = Engine.update_path_to_string report.Engine.up_path in
    { d_result =
        Json.Obj
          [ ("program", Json.Str key');
            ("path", Json.Str path);
            ("relowered", Json.Int report.Engine.up_relowered);
            ("segments_refrozen", Json.Int report.Engine.up_segments_refrozen);
            ("segments_total", Json.Int report.Engine.up_segments_total);
            ("nodes_dead", Json.Int report.Engine.up_nodes_dead);
            ("nodes_new", Json.Int report.Engine.up_nodes_new) ];
      d_tel =
        [ ("cache", Json.Str "update"); ("program", Json.Str key');
          ("path", Json.Str path) ];
      d_stop = false }
  | _ -> (
    let params = params_of req in
    match query_of_method mname params with
    | None -> errf method_not_found "unknown method %s" mname
    | Some q ->
      let e, hit = resolve_program st params in
      let result =
        try
          Engine.query_result_to_json e.e_handle q
            (Engine.run_query ~jobs:st.cfg.jobs e.e_handle q)
        with Engine.No_seed line ->
          errf user_error "no statement found at line %d" line
      in
      { d_result = result; d_tel = cache_tel e hit; d_stop = false })

(* ------------------------------------------------------------------ *)
(* The response envelope                                               *)
(* ------------------------------------------------------------------ *)

type outcome = {
  resp : Json.t;
  stop : bool;
}

let telemetry_json ~(tel : (string * Json.t) list) ~(wall : float)
    (snap : Slice_obs.snapshot) : Json.t =
  Json.Obj
    (tel
    @ [ ("wall_s", Json.Float wall);
        ("phase_wall_s",
         Json.Obj
           (List.map
              (fun (n, w) -> (n, Json.Float w))
              (Slice_obs.span_totals snap))) ])

let handle_request (st : state) (req : Json.t) : outcome =
  let id = Option.value (Json.member "id" req) ~default:Json.Null in
  let t0 = Unix.gettimeofday () in
  (* Scoped: the snapshot holds exactly this query's spans — on a cache
     hit there is no front/pta/sdg phase in it at all, the claim the
     serve_ab bench self-checks.  The merge-back then lands those spans
     in the daemon registry, where [reset_spans] drops them: a resident
     process must not accumulate one span tree per query forever. *)
  let out, snap =
    Slice_obs.scoped (fun () ->
        try Ok (dispatch st req) with
        | Err (code, msg) -> Error (code, msg)
        | Engine.No_seed line ->
          Error (user_error, Printf.sprintf "no statement found at line %d" line)
        | Failure msg -> Error (user_error, msg)
        | Invalid_argument msg ->
          Error (user_error, "invalid argument: " ^ msg)
        | e -> Error (internal_error, Printexc.to_string e))
  in
  Slice_obs.reset_spans ();
  let wall = Unix.gettimeofday () -. t0 in
  match out with
  | Ok d ->
    { resp =
        Json.Obj
          [ ("id", id);
            ("result", d.d_result);
            ("telemetry", telemetry_json ~tel:d.d_tel ~wall snap) ];
      stop = d.d_stop }
  | Error (code, msg) ->
    { resp =
        Json.Obj
          [ ("id", id);
            ("error",
             Json.Obj [ ("code", Json.Int code); ("message", Json.Str msg) ]);
            ("telemetry", telemetry_json ~tel:[] ~wall snap) ];
      stop = false }

let handle_line (st : state) (line : string) : outcome option =
  if String.trim line = "" then None
  else
    match Json.of_string line with
    | Ok req -> Some (handle_request st req)
    | Error msg ->
      Some
        { resp =
            Json.Obj
              [ ("id", Json.Null);
                ("error",
                 Json.Obj
                   [ ("code", Json.Int parse_error);
                     ("message", Json.Str ("parse error: " ^ msg)) ]) ];
          stop = false }

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let serve_channels (st : state) (ic : in_channel) (oc : out_channel) :
    [ `Eof | `Shutdown ] =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line -> (
      match handle_line st line with
      | None -> loop ()
      | Some o ->
        output_string oc (Json.to_string o.resp);
        output_char oc '\n';
        flush oc;
        if o.stop then `Shutdown else loop ())
  in
  loop ()

let serve_unix_socket (st : state) ~(path : string) : unit =
  (* A client that vanishes mid-response must not kill the daemon: the
     default SIGPIPE disposition terminates the process on the first
     write to the dead socket.  Ignored, the write raises instead, and
     the per-connection handler below turns it into that connection's
     EOF. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let status =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              (* EPIPE/ECONNRESET on a half-closed peer surfaces here as
                 Sys_error (channel writes) or Unix_error (raw ops); a
                 dead client ends its own connection, never the accept
                 loop, and the [finally] above still releases the fd. *)
              try serve_channels st ic oc
              with
              | End_of_file | Sys_error _ | Unix.Unix_error (_, _, _) ->
                `Eof)
        in
        match status with `Shutdown -> () | `Eof -> accept_loop ()
      in
      accept_loop ())
