(** Slice-as-a-service: the [thinslice serve] protocol and program cache.

    A long-lived daemon answering line-delimited JSON requests
    ([thinslice.serve/v1]) over stdin/stdout or a Unix socket.  Loaded
    programs are cached in an LRU keyed by source digest x (sensitivity,
    solver); each resident entry holds a frozen CSR SDG + solved
    points-to ({!Engine.handle}), so repeat queries skip the whole
    analysis pipeline.  Every query dispatches through
    {!Engine.run_query} — the same code path as the one-shot CLI — and
    every response carries per-query telemetry (cache hit/miss, wall,
    per-phase walls from the query-scoped {!Slice_obs} snapshot).

    {2 Protocol}

    One request per line:
    [{"id": ..., "method": M, "params": {...}}] with [M] one of [load],
    [update], [slice], [forward], [chop], [expand], [explain],
    [report], [stats], [shutdown].  Every method except [shutdown] and
    [update] identifies a program either by ["program"] (a key
    returned from an earlier load; a structured error when no longer
    resident) or inline by ["source"] (+ optional ["file"]) or by a
    multi-file ["sources"] array of [{"file": F, "source": S}] objects
    (+ optional ["obj_sens"], ["solver"]), which loads on miss and
    reuses the resident analysis on hit.  Duplicate paths in
    ["sources"] are a code-1 error.  Query params: ["line"], ["mode"]
    (any {!Slice_core.Slicer.mode_of_string} spelling, default thin),
    ["to"] (chop), ["seed"] (explain).

    [update] takes a resident ["program"] key plus the edited
    ["source"]/["sources"] and re-analyzes incrementally
    ({!Slice_core.Engine.update}): the cache entry is re-keyed under
    the new digest and patched in place rather than evicted, and the
    result reports the incremental path taken ([noop], [patched],
    [resolved-incremental], [resolved-fresh], [rebuilt]) with its
    delta statistics ([relowered],
    [segments_refrozen]/[segments_total], [nodes_dead]/[nodes_new]).
    After an update the daemon's walk scratch is shrunk to the largest
    resident program, exactly as on eviction.

    One response per request, in order:
    [{"id": ..., "result": R, "telemetry": T}] or
    [{"id": ..., "error": {"code": C, "message": S}, "telemetry": T}].
    [R] byte-equals the corresponding one-shot CLI [--json] payload.
    Protocol errors use the JSON-RPC codes (-32700 parse, -32600
    invalid request, -32601 unknown method, -32602 invalid params);
    analysis/user errors (load failure, no statement at a line, program
    not resident) use code 1 and unexpected internal errors code 2,
    mirroring the CLI exit-code contract.  No request ever kills the
    loop. *)

val protocol_version : string
(** ["thinslice.serve/v1"]. *)

type config = {
  max_programs : int;  (** LRU capacity; at least 1 *)
  jobs : int;  (** worker domains forwarded to provenance queries *)
}

val default_config : config
(** [{ max_programs = 8; jobs = 1 }]. *)

(** Error codes carried in [{"error": {"code": C}}] responses: the
    JSON-RPC codes for protocol-level failures, plus [user_error] (1)
    and [internal_error] (2) mirroring the CLI exit-code contract. *)

val parse_error : int
(** [-32700]: the request line was not valid JSON. *)

val invalid_request : int
(** [-32600]: not an object, or no string ["method"]. *)

val method_not_found : int
(** [-32601]: unknown ["method"]. *)

val invalid_params : int
(** [-32602]: missing or ill-typed params (line, mode, solver, ...). *)

val user_error : int
(** [1]: analysis/user error — unloadable source, no statement at the
    line, a program key that is no longer resident. *)

val internal_error : int
(** [2]: an unexpected internal error (a bug). *)

(** Mutable daemon state: the LRU of resident analyses. *)
type state

val create_state : config -> state

(** The cache key of a program: MD5 digest over every (file, source)
    pair x object-sensitivity x solver.  This is what a load result
    returns as ["program"] and what query requests may pass back.  A
    singleton list yields the same key as {!program_key}. *)
val program_key_sources :
  ?obj_sens:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  (string * string) list ->
  string

(** Single-file convenience form of {!program_key_sources}. *)
val program_key :
  ?obj_sens:bool ->
  ?solver:[ `Bitset | `Reference ] ->
  file:string ->
  string ->
  string

(** Resident program keys, most recently used first (exposed for the
    eviction tests and the bench). *)
val cache_keys : state -> string list

(** Handle one decoded request.  Returns the response and whether the
    daemon should stop ([shutdown]).  Never raises: every failure is
    encoded as a structured error response. *)
type outcome = {
  resp : Slice_obs.Json.t;
  stop : bool;
}

val handle_request : state -> Slice_obs.Json.t -> outcome

(** Handle one raw request line.  [None] for blank lines (no response
    is sent); parse failures become [-32700] error responses. *)
val handle_line : state -> string -> outcome option

(** Serve a channel pair until EOF or a [shutdown] request; responses
    are flushed per line. *)
val serve_channels : state -> in_channel -> out_channel -> [ `Eof | `Shutdown ]

(** Serve a Unix domain socket: bind [path] (unlinking any stale socket
    file first), accept one connection at a time, serve each until its
    EOF, and return (unlinking [path]) when a connection sends
    [shutdown].  SIGPIPE is ignored for the daemon's lifetime; a client
    that disconnects mid-request or mid-response ends only its own
    connection (fd released, next connection served). *)
val serve_unix_socket : state -> path:string -> unit
