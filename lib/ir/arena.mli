(** Flat int-indexed arena view of a program's IR — the memory-diet
    representation the analysis hot paths read (ROADMAP item 3, the
    Koika-style lowering of a typed AST into dense indexed form).

    The record IR ({!Instr}, {!Program}) stays the source of truth: the
    frontend, pretty-printer, interpreter and incremental patcher keep
    operating on records.  An arena is built ONCE from the records
    after lowering and packs everything the dependence analyses walk
    per statement into flat [int array] columns:

    - strings (field names, class names) interned once in a side table;
    - defs, classified uses and term uses as packed CSR int spans
      (no per-statement list/closure allocation when iterated);
    - heap-access descriptors (store/load/array/static/length) as small
      opcode tags plus operand ints;
    - call-argument lists as CSR spans.

    Column order follows {!Instr.iter_instrs} / {!Instr.iter_terms}
    per method, methods in {!Program.iter_methods} (sorted) order — so
    an analysis pass that walks the arena visits statements in exactly
    the order the record-based pass does, which is what makes the
    arena- and record-backed SDG builds edge-for-edge identical.

    [instr] exposes the original record per arena index (a pointer
    back, not a reconstruction), so any consumer can fall back to the
    record view without the arena having to replicate payloads it does
    not pack (constants, types). *)

open! Types

type t

(** Heap/call opcode classification of an instruction, mirroring the
    cases the SDG heap-indexing pass and mod-ref analysis switch on.
    Operand accessors: [base] is the pointer variable whose points-to
    set keys the access; [sym]/[sym2] are interned string ids (field
    name, or class + field for statics). *)
type op =
  | Op_other
  | Op_store         (** x.f = y:    base = x, sym = f *)
  | Op_load          (** x = y.f:    base = y, sym = f *)
  | Op_array_store   (** a[i] = x:   base = a *)
  | Op_array_load    (** x = a[i]:   base = a *)
  | Op_new_array     (** x = new T[n]: base = x *)
  | Op_array_length  (** x = a.length: base = a *)
  | Op_static_store  (** C.f = y:    sym = C, sym2 = f *)
  | Op_static_load   (** x = C.f:    sym = C, sym2 = f *)
  | Op_call          (** args in the call-arg span *)

val build : Program.t -> t

(* --- methods --- *)

val num_methods : t -> int

(** Arena method index for a qname; only methods with bodies are in the
    arena. *)
val method_id : t -> Instr.method_qname -> int option

val method_qname : t -> int -> Instr.method_qname
val num_vars : t -> int -> int

(** Parameter variables of method [m] in declaration order
    ([param_var t m 0] is [this] for instance methods). *)
val num_params : t -> int -> int

val param_var : t -> int -> int -> Instr.var

(* --- instruction columns (global arena indices) --- *)

val num_instrs : t -> int

(** Instruction span of method [m]: indices [fst .. snd - 1]. *)
val instr_span : t -> int -> int * int

val instr_stmt : t -> int -> Instr.stmt_id
val instr_def : t -> int -> Instr.var  (** -1 when the instr defines nothing *)

val instr_op : t -> int -> op
val instr_base : t -> int -> Instr.var
val instr_sym : t -> int -> string
val instr_sym2 : t -> int -> string

(** Classified uses of instruction [ix], in {!Instr.classified_uses}
    order, without allocating: [f var use_class_tag] with the tag 0 =
    value, 1 = base, 2 = index. *)
val uses_iter : t -> int -> (Instr.var -> int -> unit) -> unit

(** Call arguments of instruction [ix] ([Op_call] only; empty span
    otherwise), in order. *)
val args_iter : t -> int -> (Instr.var -> unit) -> unit

val instr : t -> int -> Instr.instr
(** The record view: the original instruction this arena row was
    lowered from. *)

(* --- terminator columns --- *)

val num_terms : t -> int
val term_span : t -> int -> int * int
val term_stmt : t -> int -> Instr.stmt_id

(** True for [Return (Some _)] — the rows the SDG return-value pass
    scans callees for. *)
val term_is_value_return : t -> int -> bool

val term_uses_iter : t -> int -> (Instr.var -> unit) -> unit

(* --- memory accounting --- *)

(** Heap footprint of the arena in bytes, computed arithmetically from
    column lengths and interned string sizes (deterministic across
    processes, unlike [Obj.reachable_words]).  Includes the record-shim
    pointer columns but NOT the records themselves — those belong to
    the program. *)
val bytes : t -> int

(** Statements covered (instrs + terms). *)
val statements : t -> int

(** Verify the arena against the record IR it was built from: per-row
    statement ids, defs, classified uses, heap descriptors, call args
    and term uses must reproduce the {!Instr} accessors exactly.
    Returns an error describing the first mismatch. *)
val check_views : Program.t -> t -> (unit, string) result
