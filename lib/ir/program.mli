(** Whole-program container: class table, method table, hierarchy queries,
    virtual dispatch resolution, and the statement registry mapping
    globally unique statement ids back to instructions. *)

open Types

type class_info = {
  c_name : class_name;
  c_super : class_name option;  (** [None] only for Object *)
  mutable c_fields : (field_name * ty) list;
  mutable c_static_fields : (field_name * ty) list;
  mutable c_methods : method_name list;  (** own (non-inherited) methods *)
  c_is_container : bool;
      (** flagged for object-sensitive points-to cloning *)
  c_builtin : bool;
  c_loc : Loc.t;
}

type t

(** A fresh program with the built-in classes (Object, String,
    InputStream, $Top with its intrinsics) registered. *)
val create : unit -> t

(** {2 Statement ids} *)

val fresh_stmt_id : t -> Instr.stmt_id
val stmt_count : t -> int

(** {2 Classes and methods} *)

val find_class : t -> class_name -> class_info option
val find_class_exn : t -> class_name -> class_info
val class_exists : t -> class_name -> bool
val find_method : t -> Instr.method_qname -> Instr.meth option
val find_method_exn : t -> Instr.method_qname -> Instr.meth

(** Raises [Invalid_argument] on duplicates. *)
val add_class : t -> class_info -> unit

val add_method : t -> Instr.meth -> unit

(** Inverse of [add_method]: drop a method from the method table and its
    class's own-method list.  Raises [Invalid_argument] when absent.
    Statement ids are never reused, so removal cannot alias later ids. *)
val remove_method : t -> Instr.method_qname -> unit

(** Iteration in deterministic (sorted) order. *)
val iter_classes : t -> (class_info -> unit) -> unit

val iter_methods : t -> (Instr.meth -> unit) -> unit
val fold_methods : t -> ('a -> Instr.meth -> 'a) -> 'a -> 'a

(** {2 Hierarchy queries} *)

val superclasses : t -> class_name -> class_name list

(** Reflexive subclass check. *)
val is_subclass : t -> sub:class_name -> sup:class_name -> bool

(** Reflexive subtyping; arrays are covariant (as in Java). *)
val is_subtype : t -> sub:ty -> sup:ty -> bool

(** May a value of static type [from] have type [target] at runtime?
    Up- or downcast compatibility. *)
val cast_compatible : t -> from:ty -> target:ty -> bool

val subclasses : t -> class_name -> class_name list

(** Field lookup walks up the hierarchy (no shadowing in TJ). *)
val lookup_field : t -> class_name -> field_name -> ty option

val field_owner : t -> class_name -> field_name -> class_name option

val lookup_static_field :
  t -> class_name -> field_name -> (class_name * ty) option

(** Virtual dispatch: resolve [name] on runtime class [c], walking up. *)
val dispatch : t -> class_name -> method_name -> Instr.meth option

(** Static lookup used by the typechecker (same walk as [dispatch]). *)
val lookup_method : t -> class_name -> method_name -> Instr.meth option

(** {2 Statement registry} *)

type site =
  | Site_instr of Instr.instr
  | Site_term of Instr.term

type stmt_info = { s_method : Instr.method_qname; s_site : site }

val stmt_loc : stmt_info -> Loc.t

(** A fresh table mapping statement ids to sites; valid until the next IR
    rewrite, so callers cache it per analysis. *)
val build_stmt_table : t -> (Instr.stmt_id, stmt_info) Hashtbl.t

(** {2 Builtins and entry} *)

val add_default_constructor : t -> class_name -> unit
val entry_method : t -> Instr.method_qname
val set_entry : t -> Instr.method_qname -> unit
