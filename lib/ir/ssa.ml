(* SSA construction (Cytron et al.): phi insertion at iterated dominance
   frontiers followed by stack-based renaming over the dominator tree.

   The paper computes local data dependences "flow sensitively" by operating
   on an SSA representation (section 5.1); after this pass every variable
   has exactly one definition, so def-use chains are exact.

   Statement ids of existing instructions are preserved (they identify
   source statements); phi instructions receive fresh ids. *)

let c_phis_inserted = Slice_obs.counter "ssa.phis_inserted"
let c_phis_pruned = Slice_obs.counter "ssa.phis_pruned"
let c_methods_converted = Slice_obs.counter "ssa.methods_converted"

let is_ssa_var (m : Instr.meth) (v : Instr.var) : bool =
  match (Instr.var_info m v).Instr.vi_kind with
  | Instr.Vssa _ -> true
  | Instr.Vparam _ | Instr.Vlocal | Instr.Vtemp -> false

(* Internal exception for scoping violations that should have been caught by
   the typechecker. *)
exception Ssa_error of string

(* Remove phi instructions whose results never reach a real (non-phi) use.
   A plain "unused" check is not enough: a loop-header phi and a join phi
   can form a dead cycle feeding only each other.  Instead, mark phis
   transitively demanded by real uses and drop the rest. *)
let prune_dead_phis (m : Instr.meth) : unit =
  let phi_def : (Instr.var, Instr.instr) Hashtbl.t = Hashtbl.create 32 in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Phi (x, _) -> Hashtbl.replace phi_def x i
      | _ -> ());
  let demanded : (Instr.var, unit) Hashtbl.t = Hashtbl.create 64 in
  let work = ref [] in
  let demand v =
    if Hashtbl.mem phi_def v && not (Hashtbl.mem demanded v) then begin
      Hashtbl.replace demanded v ();
      work := v :: !work
    end
  in
  Instr.iter_instrs m (fun _ i ->
      match i.Instr.i_kind with
      | Instr.Phi _ -> ()
      | _ -> List.iter demand (Instr.uses_of_instr i));
  Instr.iter_terms m (fun _ t -> List.iter demand (Instr.uses_of_term t));
  while !work <> [] do
    match !work with
    | [] -> ()
    | v :: rest ->
      work := rest;
      let phi = Hashtbl.find phi_def v in
      List.iter demand (Instr.uses_of_instr phi)
  done;
  Array.iter
    (fun b ->
      b.Instr.b_instrs <-
        List.filter
          (fun i ->
            match i.Instr.i_kind with
            | Instr.Phi (x, _) ->
              let keep = Hashtbl.mem demanded x in
              if not keep then Slice_obs.bump c_phis_pruned;
              keep
            | _ -> true)
          b.Instr.b_instrs)
    (Instr.blocks_exn m)

let convert (p : Program.t) (m : Instr.meth) : unit =
  if not (Instr.has_body m) then ()
  else begin
    Slice_obs.bump c_methods_converted;
    let cfg = Cfg.build m in
    let dom = Dominance.compute (Dominance.forward_graph cfg) in
    let df = Dominance.dominance_frontiers dom in
    let dom_children = Dominance.dom_tree dom in
    let blocks = Instr.blocks_exn m in
    let nblocks = Array.length blocks in
    let nvars = Array.length m.Instr.m_vars in
    (* 1. Definition sites of each original variable. *)
    let def_blocks = Array.make nvars [] in
    let add_def v l =
      if not (List.mem l def_blocks.(v)) then def_blocks.(v) <- l :: def_blocks.(v)
    in
    List.iter (fun v -> add_def v cfg.Cfg.entry) m.Instr.m_params;
    Instr.iter_instrs m (fun l i ->
        match Instr.def_of_instr i with
        | Some v -> add_def v l
        | None -> ());
    (* 2. Phi insertion at iterated dominance frontiers.  [phi_for.(l)] maps
       original variables to the (mutable) phi record for that block. *)
    let phi_for : (Instr.var, Instr.instr ref) Hashtbl.t array =
      Array.init nblocks (fun _ -> Hashtbl.create 4)
    in
    for v = 0 to nvars - 1 do
      if def_blocks.(v) <> [] then begin
        let work = ref def_blocks.(v) in
        let has_phi = Array.make nblocks false in
        let ever_on_work = Array.make nblocks false in
        List.iter (fun l -> ever_on_work.(l) <- true) !work;
        while !work <> [] do
          let l = List.hd !work in
          work := List.tl !work;
          List.iter
            (fun y ->
              if (not has_phi.(y)) && Dominance.reachable dom y then begin
                has_phi.(y) <- true;
                let loc =
                  match blocks.(y).Instr.b_instrs with
                  | i :: _ -> i.Instr.i_loc
                  | [] -> blocks.(y).Instr.b_term.Instr.t_loc
                in
                let phi =
                  { Instr.i_id = Program.fresh_stmt_id p;
                    i_kind = Instr.Phi (v, []);
                    i_loc = loc }
                in
                Slice_obs.bump c_phis_inserted;
                Hashtbl.replace phi_for.(y) v (ref phi);
                if not ever_on_work.(y) then begin
                  ever_on_work.(y) <- true;
                  work := y :: !work
                end
              end)
            df.(l)
        done
      end
    done;
    (* 3. Renaming.  Stacks of SSA versions per original variable.  Parameters
       keep their original variable as version 0, so [m_params] stays valid. *)
    let stacks : Instr.var list array = Array.make nvars [] in
    let fresh_version (v : Instr.var) : Instr.var =
      let vi = Instr.var_info m v in
      let version_count =
        Array.length m.Instr.m_vars
        (* names only need to be readable, not dense *)
      in
      Instr.add_var m
        { Instr.vi_name = Printf.sprintf "%s#%d" vi.Instr.vi_name version_count;
          vi_kind = Instr.Vssa v;
          vi_ty = vi.Instr.vi_ty }
    in
    let top v =
      match stacks.(v) with
      | s :: _ -> s
      | [] ->
        raise
          (Ssa_error
             (Printf.sprintf "use of %s before definition in %s"
                (Instr.var_name m v)
                (Instr.method_qname_to_string m.Instr.m_qname)))
    in
    (* Variables standing in for never-defined phi operands; phis using them
       must be pruned afterwards. *)
    let undef_vars = Hashtbl.create 4 in
    let top_or_undef v =
      match stacks.(v) with
      | s :: _ -> s
      | [] ->
        let u =
          Instr.add_var m
            { Instr.vi_name = Printf.sprintf "%s#undef" (Instr.var_name m v);
              vi_kind = Instr.Vssa v;
              vi_ty = (Instr.var_info m v).Instr.vi_ty }
        in
        Hashtbl.replace undef_vars u ();
        u
    in
    let rename_uses (k : Instr.instr_kind) : Instr.instr_kind =
      match k with
      | Instr.Const _ | Instr.New _ | Instr.Static_load _ | Instr.Nop -> k
      | Instr.Move (x, y) -> Instr.Move (x, top y)
      | Instr.Binop (x, op, y, z) -> Instr.Binop (x, op, top y, top z)
      | Instr.Unop (x, op, y) -> Instr.Unop (x, op, top y)
      | Instr.New_array (x, t, n) -> Instr.New_array (x, t, top n)
      | Instr.Load (x, y, f) -> Instr.Load (x, top y, f)
      | Instr.Store (x, f, y) -> Instr.Store (top x, f, top y)
      | Instr.Array_load (x, y, i) -> Instr.Array_load (x, top y, top i)
      | Instr.Array_store (a, i, y) -> Instr.Array_store (top a, top i, top y)
      | Instr.Static_store (c, f, y) -> Instr.Static_store (c, f, top y)
      | Instr.Call { lhs; kind; args } ->
        Instr.Call { lhs; kind; args = List.map top args }
      | Instr.Cast (x, t, y) -> Instr.Cast (x, t, top y)
      | Instr.Instance_of (x, t, y) -> Instr.Instance_of (x, t, top y)
      | Instr.Array_length (x, y) -> Instr.Array_length (x, top y)
      | Instr.Phi _ -> k (* operands filled from predecessors *)
    in
    let rename_def (k : Instr.instr_kind) (push : Instr.var -> Instr.var) :
        Instr.instr_kind =
      match k with
      | Instr.Const (x, c) -> Instr.Const (push x, c)
      | Instr.Move (x, y) -> Instr.Move (push x, y)
      | Instr.Binop (x, op, y, z) -> Instr.Binop (push x, op, y, z)
      | Instr.Unop (x, op, y) -> Instr.Unop (push x, op, y)
      | Instr.New (x, c) -> Instr.New (push x, c)
      | Instr.New_array (x, t, n) -> Instr.New_array (push x, t, n)
      | Instr.Load (x, y, f) -> Instr.Load (push x, y, f)
      | Instr.Array_load (x, y, i) -> Instr.Array_load (push x, y, i)
      | Instr.Static_load (x, c, f) -> Instr.Static_load (push x, c, f)
      | Instr.Cast (x, t, y) -> Instr.Cast (push x, t, y)
      | Instr.Instance_of (x, t, y) -> Instr.Instance_of (push x, t, y)
      | Instr.Array_length (x, y) -> Instr.Array_length (push x, y)
      | Instr.Call { lhs = Some x; kind; args } ->
        Instr.Call { lhs = Some (push x); kind; args }
      | Instr.Phi (x, ins) -> Instr.Phi (push x, ins)
      | Instr.Call { lhs = None; _ } | Instr.Store _ | Instr.Array_store _
      | Instr.Static_store _ | Instr.Nop -> k
    in
    let rec rename_block (l : Instr.label) : unit =
      let pushed = ref [] in
      let push v =
        let nv = fresh_version v in
        stacks.(v) <- nv :: stacks.(v);
        pushed := v :: !pushed;
        nv
      in
      (* Parameters are implicitly defined at the entry. *)
      if l = cfg.Cfg.entry then
        List.iter
          (fun v ->
            stacks.(v) <- v :: stacks.(v);
            pushed := v :: !pushed)
          m.Instr.m_params;
      let b = blocks.(l) in
      (* Phis first: define new versions (their refs live in phi_for). *)
      Hashtbl.iter
        (fun _v phi_ref ->
          let phi = !phi_ref in
          phi_ref := { phi with Instr.i_kind = rename_def phi.Instr.i_kind push })
        phi_for.(l);
      b.Instr.b_instrs <-
        List.map
          (fun i ->
            let k = rename_uses i.Instr.i_kind in
            let k = rename_def k push in
            { i with Instr.i_kind = k })
          b.Instr.b_instrs;
      let t = b.Instr.b_term in
      let tk =
        match t.Instr.t_kind with
        | Instr.Goto _ as k -> k
        | Instr.If (v, l1, l2) -> Instr.If (top v, l1, l2)
        | Instr.Return (Some v) -> Instr.Return (Some (top v))
        | Instr.Return None as k -> k
        | Instr.Throw v -> Instr.Throw (top v)
      in
      b.Instr.b_term <- { t with Instr.t_kind = tk };
      (* Fill phi operands in CFG successors. *)
      List.iter
        (fun s ->
          Hashtbl.iter
            (fun orig phi_ref ->
              let phi = !phi_ref in
              match phi.Instr.i_kind with
              | Instr.Phi (x, ins) ->
                let operand = top_or_undef orig in
                phi_ref :=
                  { phi with Instr.i_kind = Instr.Phi (x, (l, operand) :: ins) }
              | _ -> assert false)
            phi_for.(s))
        (Cfg.successors cfg l);
      (* Recurse over dominator-tree children. *)
      List.iter rename_block dom_children.(l);
      List.iter (fun v -> stacks.(v) <- List.tl stacks.(v)) !pushed
    in
    rename_block cfg.Cfg.entry;
    (* 4. Materialize phis at block heads and prune dead ones. *)
    Array.iteri
      (fun l tbl ->
        let phis = Hashtbl.fold (fun _ r acc -> !r :: acc) tbl [] in
        let phis =
          List.sort (fun a b -> compare a.Instr.i_id b.Instr.i_id) phis
        in
        blocks.(l).Instr.b_instrs <- phis @ blocks.(l).Instr.b_instrs)
      phi_for;
    prune_dead_phis m;
    (* Sanity: no surviving instruction may use an undef placeholder. *)
    Instr.iter_instrs m (fun _ i ->
        List.iter
          (fun v ->
            if Hashtbl.mem undef_vars v then
              raise
                (Ssa_error
                   (Printf.sprintf "undefined variable %s survives SSA in %s (instr %d)"
                      (Instr.var_name m v)
                      (Instr.method_qname_to_string m.Instr.m_qname)
                      i.Instr.i_id)))
          (Instr.uses_of_instr i))
  end

(* Check SSA invariants; used by tests and as a debugging aid. *)
let check (m : Instr.meth) : (unit, string) result =
  if not (Instr.has_body m) then Ok ()
  else begin
    let defs = Hashtbl.create 64 in
    let dup = ref None in
    Instr.iter_instrs m (fun _ i ->
        match Instr.def_of_instr i with
        | Some v ->
          if Hashtbl.mem defs v then
            dup := Some (Printf.sprintf "variable %s defined twice" (Instr.var_name m v))
          else Hashtbl.replace defs v ()
        | None -> ());
    match !dup with
    | Some msg -> Error msg
    | None -> Ok ()
  end
