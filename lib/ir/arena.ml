(* Flat int-indexed arena view of the record IR.  See arena.mli for the
   design contract; the representation notes here:

   - every column is an [int array] (or a record-pointer array for the
     shim); spans are CSR offsets, so iterating a method's instructions
     or one instruction's uses allocates nothing;
   - strings are interned once into [syms] — heap-access keys compare
     structurally downstream, so sharing is a pure win;
   - the builder walks [Program.iter_methods] (sorted order) and
     [Instr.iter_instrs]/[iter_terms] within each method, i.e. exactly
     the statement order of every record-based analysis pass.  Row
     order IS the parity argument for the arena-backed SDG build. *)

type op =
  | Op_other
  | Op_store
  | Op_load
  | Op_array_store
  | Op_array_load
  | Op_new_array
  | Op_array_length
  | Op_static_store
  | Op_static_load
  | Op_call

let op_tag = function
  | Op_other -> 0
  | Op_store -> 1
  | Op_load -> 2
  | Op_array_store -> 3
  | Op_array_load -> 4
  | Op_new_array -> 5
  | Op_array_length -> 6
  | Op_static_store -> 7
  | Op_static_load -> 8
  | Op_call -> 9

let op_of_tag = function
  | 0 -> Op_other
  | 1 -> Op_store
  | 2 -> Op_load
  | 3 -> Op_array_store
  | 4 -> Op_array_load
  | 5 -> Op_new_array
  | 6 -> Op_array_length
  | 7 -> Op_static_store
  | 8 -> Op_static_load
  | 9 -> Op_call
  | t -> invalid_arg (Printf.sprintf "Arena.op_of_tag: %d" t)

type t = {
  syms : string array;
  (* methods *)
  m_qnames : Instr.method_qname array;
  m_nvars : int array;
  m_instr_off : int array;       (* num_methods + 1 *)
  m_term_off : int array;
  m_param_off : int array;
  m_param_var : int array;
  m_index : (Instr.method_qname, int) Hashtbl.t;
  (* instructions *)
  i_stmt : int array;
  i_def : int array;             (* -1 = no def *)
  i_op : int array;              (* op_tag *)
  i_base : int array;            (* pointer var of heap ops, else -1 *)
  i_sym : int array;             (* interned id, else -1 *)
  i_sym2 : int array;
  i_rec : Instr.instr array;     (* record shim *)
  u_off : int array;             (* num_instrs + 1 *)
  u_var : int array;
  u_cls : int array;             (* 0 value, 1 base, 2 index *)
  c_off : int array;             (* num_instrs + 1: call args *)
  c_arg : int array;
  (* terminators *)
  t_stmt : int array;
  t_ret : int array;             (* 1 = Return (Some _) *)
  tu_off : int array;            (* num_terms + 1 *)
  tu_var : int array;
}

(* Growable int buffer; commit once into a right-sized array. *)
module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create n = { a = Array.make (max 16 n) 0; len = 0 }

  let push b v =
    if b.len = Array.length b.a then begin
      let bigger = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 bigger 0 b.len;
      b.a <- bigger
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let commit b = Array.sub b.a 0 b.len
end

let use_cls_tag = function
  | Instr.Use_value -> 0
  | Instr.Use_base -> 1
  | Instr.Use_index -> 2

let build (p : Program.t) : t =
  let sym_ids : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let sym_list = ref [] and n_syms = ref 0 in
  let intern s =
    match Hashtbl.find_opt sym_ids s with
    | Some i -> i
    | None ->
      let i = !n_syms in
      Hashtbl.replace sym_ids s i;
      sym_list := s :: !sym_list;
      incr n_syms;
      i
  in
  let m_qnames = ref [] and n_meths = ref 0 in
  let m_index = Hashtbl.create 64 in
  let m_nvars = Ibuf.create 64 in
  let m_instr_off = Ibuf.create 64 and m_term_off = Ibuf.create 64 in
  let m_param_off = Ibuf.create 64 and m_param_var = Ibuf.create 64 in
  let i_stmt = Ibuf.create 1024 and i_def = Ibuf.create 1024 in
  let i_op = Ibuf.create 1024 and i_base = Ibuf.create 1024 in
  let i_sym = Ibuf.create 1024 and i_sym2 = Ibuf.create 1024 in
  let i_recs = ref [] in
  let u_off = Ibuf.create 1024 and u_var = Ibuf.create 1024
  and u_cls = Ibuf.create 1024 in
  let c_off = Ibuf.create 1024 and c_arg = Ibuf.create 64 in
  let t_stmt = Ibuf.create 256 and t_ret = Ibuf.create 256 in
  let tu_off = Ibuf.create 256 and tu_var = Ibuf.create 256 in
  Ibuf.push m_instr_off 0;
  Ibuf.push m_term_off 0;
  Ibuf.push m_param_off 0;
  Program.iter_methods p (fun m ->
      if Instr.has_body m then begin
        let mq = m.Instr.m_qname in
        Hashtbl.replace m_index mq !n_meths;
        m_qnames := mq :: !m_qnames;
        incr n_meths;
        Ibuf.push m_nvars (Array.length m.Instr.m_vars);
        List.iter (Ibuf.push m_param_var) m.Instr.m_params;
        Ibuf.push m_param_off m_param_var.Ibuf.len;
        Instr.iter_instrs m (fun _ i ->
            Ibuf.push i_stmt i.Instr.i_id;
            Ibuf.push i_def
              (match Instr.def_of_instr i with Some v -> v | None -> -1);
            i_recs := i :: !i_recs;
            let op, base, s1, s2 =
              match i.Instr.i_kind with
              | Instr.Store (x, f, _) -> (Op_store, x, intern f, -1)
              | Instr.Load (_, y, f) -> (Op_load, y, intern f, -1)
              | Instr.Array_store (a, _, _) -> (Op_array_store, a, -1, -1)
              | Instr.Array_load (_, a, _) -> (Op_array_load, a, -1, -1)
              | Instr.New_array (x, _, _) -> (Op_new_array, x, -1, -1)
              | Instr.Array_length (_, a) -> (Op_array_length, a, -1, -1)
              | Instr.Static_store (c, f, _) ->
                (Op_static_store, -1, intern c, intern f)
              | Instr.Static_load (_, c, f) ->
                (Op_static_load, -1, intern c, intern f)
              | Instr.Call _ -> (Op_call, -1, -1, -1)
              | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Unop _
              | Instr.New _ | Instr.Cast _ | Instr.Instance_of _
              | Instr.Phi _ | Instr.Nop -> (Op_other, -1, -1, -1)
            in
            Ibuf.push i_op (op_tag op);
            Ibuf.push i_base base;
            Ibuf.push i_sym s1;
            Ibuf.push i_sym2 s2;
            List.iter
              (fun (v, cls) ->
                Ibuf.push u_var v;
                Ibuf.push u_cls (use_cls_tag cls))
              (Instr.classified_uses i);
            Ibuf.push u_off u_var.Ibuf.len;
            (match i.Instr.i_kind with
            | Instr.Call { args; _ } -> List.iter (Ibuf.push c_arg) args
            | _ -> ());
            Ibuf.push c_off c_arg.Ibuf.len);
        Ibuf.push m_instr_off i_stmt.Ibuf.len;
        Instr.iter_terms m (fun _ t ->
            Ibuf.push t_stmt t.Instr.t_id;
            Ibuf.push t_ret
              (match t.Instr.t_kind with
              | Instr.Return (Some _) -> 1
              | Instr.Return None | Instr.Goto _ | Instr.If _ | Instr.Throw _
                -> 0);
            List.iter (Ibuf.push tu_var) (Instr.uses_of_term t);
            Ibuf.push tu_off tu_var.Ibuf.len);
        Ibuf.push m_term_off t_stmt.Ibuf.len
      end);
  (* CSR offsets above were pushed per-row as running totals; prepend
     the leading 0 each stream needs. *)
  let with_zero b =
    let a = Array.make (b.Ibuf.len + 1) 0 in
    Array.blit b.Ibuf.a 0 a 1 b.Ibuf.len;
    a
  in
  { syms = Array.of_list (List.rev !sym_list);
    m_qnames = Array.of_list (List.rev !m_qnames);
    m_nvars = Ibuf.commit m_nvars;
    m_instr_off = Ibuf.commit m_instr_off;
    m_term_off = Ibuf.commit m_term_off;
    m_param_off = Ibuf.commit m_param_off;
    m_param_var = Ibuf.commit m_param_var;
    m_index;
    i_stmt = Ibuf.commit i_stmt;
    i_def = Ibuf.commit i_def;
    i_op = Ibuf.commit i_op;
    i_base = Ibuf.commit i_base;
    i_sym = Ibuf.commit i_sym;
    i_sym2 = Ibuf.commit i_sym2;
    i_rec = Array.of_list (List.rev !i_recs);
    u_off = with_zero u_off;
    u_var = Ibuf.commit u_var;
    u_cls = Ibuf.commit u_cls;
    c_off = with_zero c_off;
    c_arg = Ibuf.commit c_arg;
    t_stmt = Ibuf.commit t_stmt;
    t_ret = Ibuf.commit t_ret;
    tu_off = with_zero tu_off;
    tu_var = Ibuf.commit tu_var }

(* --- accessors --- *)

let num_methods (t : t) = Array.length t.m_qnames
let method_id (t : t) mq = Hashtbl.find_opt t.m_index mq
let method_qname (t : t) m = t.m_qnames.(m)
let num_vars (t : t) m = t.m_nvars.(m)
let num_params (t : t) m = t.m_param_off.(m + 1) - t.m_param_off.(m)
let param_var (t : t) m i = t.m_param_var.(t.m_param_off.(m) + i)

let num_instrs (t : t) = Array.length t.i_stmt
let instr_span (t : t) m = (t.m_instr_off.(m), t.m_instr_off.(m + 1))
let instr_stmt (t : t) ix = t.i_stmt.(ix)
let instr_def (t : t) ix = t.i_def.(ix)
let instr_op (t : t) ix = op_of_tag t.i_op.(ix)
let instr_base (t : t) ix = t.i_base.(ix)
let instr_sym (t : t) ix = t.syms.(t.i_sym.(ix))
let instr_sym2 (t : t) ix = t.syms.(t.i_sym2.(ix))
let instr (t : t) ix = t.i_rec.(ix)

let uses_iter (t : t) ix (f : int -> int -> unit) : unit =
  for u = t.u_off.(ix) to t.u_off.(ix + 1) - 1 do
    f (Array.unsafe_get t.u_var u) (Array.unsafe_get t.u_cls u)
  done

let args_iter (t : t) ix (f : int -> unit) : unit =
  for c = t.c_off.(ix) to t.c_off.(ix + 1) - 1 do
    f (Array.unsafe_get t.c_arg c)
  done

let num_terms (t : t) = Array.length t.t_stmt
let term_span (t : t) m = (t.m_term_off.(m), t.m_term_off.(m + 1))
let term_stmt (t : t) tx = t.t_stmt.(tx)
let term_is_value_return (t : t) tx = t.t_ret.(tx) = 1

let term_uses_iter (t : t) tx (f : int -> unit) : unit =
  for u = t.tu_off.(tx) to t.tu_off.(tx + 1) - 1 do
    f (Array.unsafe_get t.tu_var u)
  done

let statements (t : t) = num_instrs t + num_terms t

(* Arithmetic byte accounting: 8 bytes per int-array slot or pointer
   slot plus one header word per array; strings at header + length
   rounded up to words.  Deterministic by construction — the same
   program lowers to the same figure in every process, which is what
   lets stats carry it across incremental updates. *)
let bytes (t : t) : int =
  let arr (a : int array) = 8 * (Array.length a + 1) in
  let parr n = 8 * (n + 1) in
  let sym_bytes =
    Array.fold_left
      (fun acc s -> acc + 8 + 8 * ((String.length s + 8) / 8))
      (parr (Array.length t.syms))
      t.syms
  in
  sym_bytes
  + parr (Array.length t.m_qnames)
  + arr t.m_nvars + arr t.m_instr_off + arr t.m_term_off + arr t.m_param_off
  + arr t.m_param_var
  + arr t.i_stmt + arr t.i_def + arr t.i_op + arr t.i_base + arr t.i_sym
  + arr t.i_sym2
  + parr (Array.length t.i_rec)
  + arr t.u_off + arr t.u_var + arr t.u_cls + arr t.c_off + arr t.c_arg
  + arr t.t_stmt + arr t.t_ret + arr t.tu_off + arr t.tu_var

(* --- view equivalence --- *)

let check_views (p : Program.t) (t : t) : (unit, string) result =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let result = ref (Ok ()) in
  let check b fmt =
    Printf.ksprintf (fun s -> if not b && !result = Ok () then result := Error s) fmt
  in
  let mcount = ref 0 and icount = ref 0 and tcount = ref 0 in
  Program.iter_methods p (fun m ->
      if Instr.has_body m && !result = Ok () then begin
        let mq = m.Instr.m_qname in
        match method_id t mq with
        | None ->
          result := fail "method %s missing" (Instr.method_qname_to_string mq)
        | Some am ->
          incr mcount;
          check
            (num_vars t am = Array.length m.Instr.m_vars)
            "%s: nvars" (Instr.method_qname_to_string mq);
          check
            (num_params t am = List.length m.Instr.m_params)
            "%s: nparams" (Instr.method_qname_to_string mq);
          List.iteri
            (fun i v -> check (param_var t am i = v) "%s: param %d"
                (Instr.method_qname_to_string mq) i)
            m.Instr.m_params;
          let lo, hi = instr_span t am in
          let ix = ref lo in
          Instr.iter_instrs m (fun _ i ->
              let k = !ix in
              incr ix;
              incr icount;
              if k >= hi then check false "%s: instr span overflow"
                  (Instr.method_qname_to_string mq)
              else begin
                check (instr_stmt t k = i.Instr.i_id) "stmt %d: id" i.Instr.i_id;
                check (instr t k == i) "stmt %d: record shim" i.Instr.i_id;
                check
                  (instr_def t k
                   = (match Instr.def_of_instr i with Some v -> v | None -> -1))
                  "stmt %d: def" i.Instr.i_id;
                (* classified uses, in order *)
                let expected =
                  List.map (fun (v, c) -> (v, use_cls_tag c))
                    (Instr.classified_uses i)
                in
                let got = ref [] in
                uses_iter t k (fun v c -> got := (v, c) :: !got);
                check (List.rev !got = expected) "stmt %d: uses" i.Instr.i_id;
                (* heap descriptor *)
                (match i.Instr.i_kind with
                | Instr.Store (x, f, _) ->
                  check
                    (instr_op t k = Op_store && instr_base t k = x
                     && instr_sym t k = f)
                    "stmt %d: store desc" i.Instr.i_id
                | Instr.Load (_, y, f) ->
                  check
                    (instr_op t k = Op_load && instr_base t k = y
                     && instr_sym t k = f)
                    "stmt %d: load desc" i.Instr.i_id
                | Instr.Array_store (a, _, _) ->
                  check (instr_op t k = Op_array_store && instr_base t k = a)
                    "stmt %d: astore desc" i.Instr.i_id
                | Instr.Array_load (_, a, _) ->
                  check (instr_op t k = Op_array_load && instr_base t k = a)
                    "stmt %d: aload desc" i.Instr.i_id
                | Instr.New_array (x, _, _) ->
                  check (instr_op t k = Op_new_array && instr_base t k = x)
                    "stmt %d: newarr desc" i.Instr.i_id
                | Instr.Array_length (_, a) ->
                  check (instr_op t k = Op_array_length && instr_base t k = a)
                    "stmt %d: arraylen desc" i.Instr.i_id
                | Instr.Static_store (c, f, _) ->
                  check
                    (instr_op t k = Op_static_store && instr_sym t k = c
                     && instr_sym2 t k = f)
                    "stmt %d: sstore desc" i.Instr.i_id
                | Instr.Static_load (_, c, f) ->
                  check
                    (instr_op t k = Op_static_load && instr_sym t k = c
                     && instr_sym2 t k = f)
                    "stmt %d: sload desc" i.Instr.i_id
                | Instr.Call { args; _ } ->
                  let got = ref [] in
                  args_iter t k (fun a -> got := a :: !got);
                  check
                    (instr_op t k = Op_call && List.rev !got = args)
                    "stmt %d: call args" i.Instr.i_id
                | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Unop _
                | Instr.New _ | Instr.Cast _ | Instr.Instance_of _
                | Instr.Phi _ | Instr.Nop ->
                  check (instr_op t k = Op_other) "stmt %d: op"
                    i.Instr.i_id)
              end);
          check (!ix = hi) "%s: instr span short"
            (Instr.method_qname_to_string mq);
          let tlo, thi = term_span t am in
          let tx = ref tlo in
          Instr.iter_terms m (fun _ tm ->
              let k = !tx in
              incr tx;
              incr tcount;
              if k >= thi then check false "%s: term span overflow"
                  (Instr.method_qname_to_string mq)
              else begin
                check (term_stmt t k = tm.Instr.t_id) "term %d: id"
                  tm.Instr.t_id;
                check
                  (term_is_value_return t k
                   = (match tm.Instr.t_kind with
                     | Instr.Return (Some _) -> true
                     | _ -> false))
                  "term %d: ret flag" tm.Instr.t_id;
                let got = ref [] in
                term_uses_iter t k (fun v -> got := v :: !got);
                check (List.rev !got = Instr.uses_of_term tm) "term %d: uses"
                  tm.Instr.t_id
              end);
          check (!tx = thi) "%s: term span short"
            (Instr.method_qname_to_string mq)
      end);
  (match !result with
  | Ok () ->
    if !mcount <> num_methods t then
      result := fail "method count: %d record vs %d arena" !mcount (num_methods t);
    if !icount <> num_instrs t then
      result := fail "instr count: %d record vs %d arena" !icount (num_instrs t);
    if !tcount <> num_terms t then
      result := fail "term count: %d record vs %d arena" !tcount (num_terms t)
  | Error _ -> ());
  !result
