(* Whole-program container: class table, method table, class hierarchy
   queries, virtual dispatch resolution, and the statement registry that
   maps globally unique statement ids back to their instructions. *)

open Types

type class_info = {
  c_name : class_name;
  c_super : class_name option;            (* None only for Object *)
  mutable c_fields : (field_name * ty) list;
  mutable c_static_fields : (field_name * ty) list;
  mutable c_methods : method_name list;   (* own (non-inherited) methods *)
  c_is_container : bool;
  c_builtin : bool;
  c_loc : Loc.t;
}

type t = {
  classes : (class_name, class_info) Hashtbl.t;
  methods : (string, Instr.meth) Hashtbl.t;   (* key: "Class.method" *)
  mutable next_stmt : int;
  mutable entry : Instr.method_qname option;
}

let method_key (mq : Instr.method_qname) =
  mq.Instr.mq_class ^ "." ^ mq.Instr.mq_name

let fresh_stmt_id (p : t) : Instr.stmt_id =
  let id = p.next_stmt in
  p.next_stmt <- id + 1;
  id

let stmt_count (p : t) = p.next_stmt

let find_class (p : t) (c : class_name) : class_info option =
  Hashtbl.find_opt p.classes c

let find_class_exn (p : t) (c : class_name) : class_info =
  match find_class p c with
  | Some ci -> ci
  | None -> invalid_arg (Printf.sprintf "Program.find_class_exn: %s" c)

let class_exists (p : t) (c : class_name) = Hashtbl.mem p.classes c

let find_method (p : t) (mq : Instr.method_qname) : Instr.meth option =
  Hashtbl.find_opt p.methods (method_key mq)

let find_method_exn (p : t) (mq : Instr.method_qname) : Instr.meth =
  match find_method p mq with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Program.find_method_exn: %s"
         (Instr.method_qname_to_string mq))

let add_class (p : t) (ci : class_info) : unit =
  if Hashtbl.mem p.classes ci.c_name then
    invalid_arg (Printf.sprintf "Program.add_class: duplicate class %s" ci.c_name);
  Hashtbl.replace p.classes ci.c_name ci

let add_method (p : t) (m : Instr.meth) : unit =
  let key = method_key m.Instr.m_qname in
  if Hashtbl.mem p.methods key then
    invalid_arg (Printf.sprintf "Program.add_method: duplicate method %s" key);
  Hashtbl.replace p.methods key m;
  let ci = find_class_exn p m.Instr.m_qname.Instr.mq_class in
  ci.c_methods <- ci.c_methods @ [ m.Instr.m_qname.Instr.mq_name ]

(* Inverse of [add_method], for structural incremental updates (a method
   deleted from a source file).  Statement ids of the removed body are
   never reused — [next_stmt] only grows — so stale references in cached
   tables dangle rather than alias. *)
let remove_method (p : t) (mq : Instr.method_qname) : unit =
  let key = method_key mq in
  if not (Hashtbl.mem p.methods key) then
    invalid_arg (Printf.sprintf "Program.remove_method: unknown method %s" key);
  Hashtbl.remove p.methods key;
  let ci = find_class_exn p mq.Instr.mq_class in
  ci.c_methods <-
    List.filter (fun n -> not (String.equal n mq.Instr.mq_name)) ci.c_methods

let iter_classes (p : t) (f : class_info -> unit) : unit =
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) p.classes [] in
  List.iter (fun n -> f (Hashtbl.find p.classes n)) (List.sort String.compare names)

let iter_methods (p : t) (f : Instr.meth -> unit) : unit =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) p.methods [] in
  List.iter (fun k -> f (Hashtbl.find p.methods k)) (List.sort String.compare keys)

let fold_methods (p : t) (f : 'a -> Instr.meth -> 'a) (init : 'a) : 'a =
  let acc = ref init in
  iter_methods p (fun m -> acc := f !acc m);
  !acc

(* ------------------------------------------------------------------ *)
(* Hierarchy queries                                                   *)
(* ------------------------------------------------------------------ *)

let rec superclasses (p : t) (c : class_name) : class_name list =
  match find_class p c with
  | None -> []
  | Some ci -> (
    match ci.c_super with
    | None -> []
    | Some s -> s :: superclasses p s)

(* [is_subclass p ~sub ~sup]: reflexive subclass check. *)
let is_subclass (p : t) ~(sub : class_name) ~(sup : class_name) : bool =
  String.equal sub sup || List.exists (String.equal sup) (superclasses p sub)

(* Reflexive subtyping; arrays are covariant (as in Java). *)
let rec is_subtype (p : t) ~(sub : ty) ~(sup : ty) : bool =
  match (sub, sup) with
  | Tint, Tint | Tbool, Tbool | Tvoid, Tvoid -> true
  | Tnull, (Tclass _ | Tarray _ | Tnull) -> true
  | Tclass c, Tclass d -> is_subclass p ~sub:c ~sup:d
  | Tarray _, Tclass d -> String.equal d object_class
  | Tarray a, Tarray b -> is_subtype p ~sub:a ~sup:b
  | (Tint | Tbool | Tvoid | Tclass _ | Tarray _ | Tnull), _ -> false

(* May a value of declared type [a] also have type [b] at runtime?  Used to
   typecheck casts and instanceof. *)
let cast_compatible (p : t) ~(from : ty) ~(target : ty) : bool =
  is_subtype p ~sub:from ~sup:target || is_subtype p ~sub:target ~sup:from

let subclasses (p : t) (c : class_name) : class_name list =
  let out = ref [] in
  iter_classes p (fun ci ->
      if is_subclass p ~sub:ci.c_name ~sup:c then out := ci.c_name :: !out);
  List.rev !out

(* Field lookup walks up the hierarchy (fields are not overridable). *)
let rec lookup_field (p : t) (c : class_name) (f : field_name) : ty option =
  match find_class p c with
  | None -> None
  | Some ci -> (
    match List.assoc_opt f ci.c_fields with
    | Some ty -> Some ty
    | None -> (
      match ci.c_super with
      | None -> None
      | Some s -> lookup_field p s f))

(* The class that declares field [f], seen from class [c].  Field ids in the
   heap abstraction are (declaring class, name) so that shadowing-free TJ
   fields have a single identity across subclasses. *)
let rec field_owner (p : t) (c : class_name) (f : field_name) : class_name option =
  match find_class p c with
  | None -> None
  | Some ci ->
    if List.mem_assoc f ci.c_fields then Some c
    else (
      match ci.c_super with
      | None -> None
      | Some s -> field_owner p s f)

let rec lookup_static_field (p : t) (c : class_name) (f : field_name) :
    (class_name * ty) option =
  match find_class p c with
  | None -> None
  | Some ci -> (
    match List.assoc_opt f ci.c_static_fields with
    | Some ty -> Some (c, ty)
    | None -> (
      match ci.c_super with
      | None -> None
      | Some s -> lookup_static_field p s f))

(* Virtual dispatch: resolve method [name] on runtime class [c], walking up
   the hierarchy. *)
let rec dispatch (p : t) (c : class_name) (name : method_name) :
    Instr.meth option =
  match find_method p { Instr.mq_class = c; mq_name = name } with
  | Some m -> Some m
  | None -> (
    match find_class p c with
    | None -> None
    | Some ci -> (
      match ci.c_super with
      | None -> None
      | Some s -> dispatch p s name))

(* Static lookup used by the typechecker: where is [name] declared, starting
   at class [c]? *)
let lookup_method (p : t) (c : class_name) (name : method_name) :
    Instr.meth option =
  dispatch p c name

(* ------------------------------------------------------------------ *)
(* Statement registry                                                  *)
(* ------------------------------------------------------------------ *)

type site =
  | Site_instr of Instr.instr
  | Site_term of Instr.term

type stmt_info = { s_method : Instr.method_qname; s_site : site }

let stmt_loc (si : stmt_info) : Loc.t =
  match si.s_site with
  | Site_instr i -> i.Instr.i_loc
  | Site_term t -> t.Instr.t_loc

(* Builds a fresh table mapping statement ids to their sites.  Callers cache
   the result; the table is only valid until the next IR rewrite. *)
let build_stmt_table (p : t) : (Instr.stmt_id, stmt_info) Hashtbl.t =
  let tbl = Hashtbl.create (max 16 p.next_stmt) in
  iter_methods p (fun m ->
      Instr.iter_instrs m (fun _ i ->
          Hashtbl.replace tbl i.Instr.i_id
            { s_method = m.Instr.m_qname; s_site = Site_instr i });
      Instr.iter_terms m (fun _ t ->
          Hashtbl.replace tbl t.Instr.t_id
            { s_method = m.Instr.m_qname; s_site = Site_term t }));
  tbl

(* ------------------------------------------------------------------ *)
(* Builtin classes                                                     *)
(* ------------------------------------------------------------------ *)

let intrinsic_method (p : t) ~cls ~name ~static ~param_tys ~ret_ty intr :
    unit =
  let params = List.mapi (fun i _ -> i) param_tys in
  let vars =
    Array.of_list
      (List.mapi
         (fun i ty ->
           { Instr.vi_name = (if i = 0 && not static then "this" else Printf.sprintf "p%d" i);
             vi_kind = Instr.Vparam i;
             vi_ty = ty })
         param_tys)
  in
  add_method p
    { Instr.m_qname = { Instr.mq_class = cls; mq_name = name };
      m_static = static;
      m_params = params;
      m_param_tys = param_tys;
      m_ret_ty = ret_ty;
      m_vars = vars;
      m_body = Instr.Intrinsic intr;
      m_loc = Loc.none }

(* An empty concrete body: a single block that just returns. *)
let empty_body (p : t) : Instr.body =
  let term =
    { Instr.t_id = fresh_stmt_id p; t_kind = Instr.Return None; t_loc = Loc.none }
  in
  Instr.Body
    { blocks = [| { Instr.b_label = 0; b_instrs = []; b_term = term } |];
      entry = 0 }

let add_default_constructor (p : t) (cls : class_name) : unit =
  let this_ty = Tclass cls in
  add_method p
    { Instr.m_qname = { Instr.mq_class = cls; mq_name = constructor_name };
      m_static = false;
      m_params = [ 0 ];
      m_param_tys = [ this_ty ];
      m_ret_ty = Tvoid;
      m_vars = [| { Instr.vi_name = "this"; vi_kind = Instr.Vparam 0; vi_ty = this_ty } |];
      m_body = empty_body p;
      m_loc = Loc.none }

let register_builtins (p : t) : unit =
  let mk ?(container = false) ?super name =
    add_class p
      { c_name = name;
        c_super = (if name = object_class then None else Some (Option.value super ~default:object_class));
        c_fields = [];
        c_static_fields = [];
        c_methods = [];
        c_is_container = container;
        c_builtin = true;
        c_loc = Loc.none }
  in
  mk object_class;
  mk string_class;
  mk input_stream_class;
  mk toplevel_class;
  add_default_constructor p object_class;
  let str = Tclass string_class in
  let stream = Tclass input_stream_class in
  let im = intrinsic_method p in
  im ~cls:string_class ~name:"indexOf" ~static:false ~param_tys:[ str; str ]
    ~ret_ty:Tint Instr.Str_index_of;
  im ~cls:string_class ~name:"substring" ~static:false
    ~param_tys:[ str; Tint; Tint ] ~ret_ty:str Instr.Str_substring;
  im ~cls:string_class ~name:"length" ~static:false ~param_tys:[ str ]
    ~ret_ty:Tint Instr.Str_length;
  im ~cls:string_class ~name:"equals" ~static:false ~param_tys:[ str; str ]
    ~ret_ty:Tbool Instr.Str_equals;
  im ~cls:string_class ~name:"charAt" ~static:false ~param_tys:[ str; Tint ]
    ~ret_ty:str Instr.Str_char_at;
  im ~cls:string_class ~name:"charCodeAt" ~static:false
    ~param_tys:[ str; Tint ] ~ret_ty:Tint Instr.Str_char_code_at;
  im ~cls:string_class ~name:"startsWith" ~static:false
    ~param_tys:[ str; str ] ~ret_ty:Tbool Instr.Str_starts_with;
  im ~cls:input_stream_class ~name:constructor_name ~static:false
    ~param_tys:[ stream; str ] ~ret_ty:Tvoid Instr.Stream_init;
  im ~cls:input_stream_class ~name:"readLine" ~static:false
    ~param_tys:[ stream ] ~ret_ty:str Instr.Stream_read_line;
  im ~cls:input_stream_class ~name:"eof" ~static:false ~param_tys:[ stream ]
    ~ret_ty:Tbool Instr.Stream_eof;
  im ~cls:toplevel_class ~name:"print" ~static:true ~param_tys:[ str ]
    ~ret_ty:Tvoid Instr.Top_print;
  im ~cls:toplevel_class ~name:"parseInt" ~static:true ~param_tys:[ str ]
    ~ret_ty:Tint Instr.Top_parse_int;
  im ~cls:toplevel_class ~name:"itoa" ~static:true ~param_tys:[ Tint ]
    ~ret_ty:str Instr.Top_itoa;
  im ~cls:toplevel_class ~name:"random" ~static:true ~param_tys:[ Tint ]
    ~ret_ty:Tint Instr.Top_random

let create () : t =
  let p =
    { classes = Hashtbl.create 64;
      methods = Hashtbl.create 256;
      next_stmt = 0;
      entry = None }
  in
  register_builtins p;
  p

let entry_method (p : t) : Instr.method_qname =
  match p.entry with
  | Some mq -> mq
  | None -> { Instr.mq_class = toplevel_class; mq_name = "main" }

let set_entry (p : t) (mq : Instr.method_qname) : unit = p.entry <- Some mq
