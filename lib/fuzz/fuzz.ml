(* The fuzz driver: generate → render → oracle battery → (on violation)
   shrink → write repro.

   Per-program seeds are derived from (run seed, index) with an
   independent splitmix stream, so [--seed N --count K] is fully
   deterministic and any single program can be regenerated from the
   repro's [derived_seed] alone. *)

type failure_report = {
  fr_index : int;
  fr_oracle : string;
  fr_detail : string;
  fr_statements : int;  (* after shrinking *)
  fr_repro_path : string option;
}

type report = {
  seed : int;
  count : int;
  max_size : int;
  fault : Oracle.fault;
  edits : int option;  (* per-program edit-chain length, when enabled *)
  programs_run : int;
  failures : failure_report list;
  tiers_exercised : string list;
      (* update-path tiers the edit chains reached, ladder order;
         [] when edits are off *)
}

(* Edits per program when [--edits] is on: enough to chain a patch onto
   an already-patched graph, small enough to keep 200 programs cheap. *)
let edits_per_program = 3

(* The engine's full update ladder.  An unfiltered [--edits] run of at
   least [tier_coverage_min_programs] programs must exercise every tier
   at least once, or the run fails with an [edit_tier_coverage]
   violation: a tier the fuzzer can no longer reach is a tier nothing
   is testing.  Shorter runs (debugging) and kind-filtered runs (which
   deliberately exclude tiers) skip the check. *)
let all_tiers =
  [ "noop"; "patched"; "resolved-incremental"; "resolved-fresh"; "rebuilt" ]

let tier_coverage_min_programs = 25

let violations_of ~(edit_kinds : Gen_tj.edit_kind list option) ~fault
    ~(edits : int option) ~(derived_seed : int) ~(model : Gen_tj.model)
    ~(r : Gen_tj.rendered) : Oracle.violation list * string list =
  let base =
    try
      Oracle.battery ~fault ~src:r.Gen_tj.src ~seed_lines:r.Gen_tj.seed_lines ()
    with e ->
      (* An escaped exception is itself an oracle violation: every layer
         under the battery promises clean error values. *)
      [ { Oracle.oracle = "exception"; detail = Printexc.to_string e } ]
  in
  match edits with
  | None -> (base, [])
  | Some n ->
    (* The edit stream is derived from the per-program seed alone, so a
       shrink candidate replays the SAME edit decisions against the
       smaller model. *)
    let ed, tiers =
      try
        Oracle.edit_battery ?kinds:edit_kinds
          ~rng:(Fuzz_rng.make (derived_seed lxor 0x45644954))
          ~model ~edits:n ()
      with e ->
        ( [ { Oracle.oracle = "edit_exception"; detail = Printexc.to_string e } ],
          [] )
    in
    (base @ ed, tiers)

let run ?(fault = Oracle.No_fault) ?(corpus_dir : string option)
    ?(progress : (int -> unit) option) ?(edits = false)
    ?(edit_kinds : Gen_tj.edit_kind list option) ~(seed : int) ~(count : int)
    ~(max_size : int) () : report =
  let edits = if edits then Some edits_per_program else None in
  let failures = ref [] in
  let tiers_seen = ref [] in
  let note_tiers ts =
    List.iter
      (fun t -> if not (List.mem t !tiers_seen) then tiers_seen := t :: !tiers_seen)
      ts
  in
  for index = 0 to count - 1 do
    (match progress with Some f -> f index | None -> ());
    let derived_seed = Fuzz_rng.derive ~seed ~index in
    let model = Gen_tj.gen ~seed:derived_seed ~max_size in
    let rendered = Gen_tj.render model in
    let vs, tiers =
      violations_of ~edit_kinds ~fault ~edits ~derived_seed ~model ~r:rendered
    in
    note_tiers tiers;
    match vs with
    | [] -> ()
    | first :: _ ->
      (* Shrink while the SAME oracle keeps failing. *)
      let still_failing m =
        let r = Gen_tj.render m in
        List.exists
          (fun v -> v.Oracle.oracle = first.Oracle.oracle)
          (fst (violations_of ~edit_kinds ~fault ~edits ~derived_seed ~model:m ~r))
      in
      let small = Gen_tj.shrink model ~still_failing in
      let rs = Gen_tj.render small in
      (* Re-run to capture the (possibly re-worded) detail on the shrunk
         program; the oracle name is stable by construction. *)
      let detail =
        match
          List.find_opt
            (fun v -> v.Oracle.oracle = first.Oracle.oracle)
            (fst
               (violations_of ~edit_kinds ~fault ~edits ~derived_seed
                  ~model:small ~r:rs))
        with
        | Some v -> v.Oracle.detail
        | None -> first.Oracle.detail
      in
      let is_edit_oracle =
        String.length first.Oracle.oracle >= 5
        && String.sub first.Oracle.oracle 0 5 = "edit_"
      in
      let repro_path =
        match corpus_dir with
        (* Edit-oracle violations have no standalone source repro: the
           failing input is (program, edit chain), reproducible from
           [fuzz --edits --seed N] via the derived seed in the detail. *)
        | _ when is_edit_oracle -> None
        | None -> None
        | Some dir ->
          Some
            (Repro.save ~dir
               { Repro.seed; index; derived_seed; fault;
                 oracle = first.Oracle.oracle; detail;
                 statements = rs.Gen_tj.stmt_count;
                 seed_lines = rs.Gen_tj.seed_lines;
                 edit_kinds =
                   (match (edits, edit_kinds) with
                   | None, _ -> []
                   | Some _, None ->
                     List.map Gen_tj.edit_kind_to_string Gen_tj.all_edit_kinds
                   | Some _, Some ks ->
                     List.map Gen_tj.edit_kind_to_string ks);
                 program = rs.Gen_tj.src })
      in
      failures :=
        { fr_index = index;
          fr_oracle = first.Oracle.oracle;
          fr_detail = detail;
          fr_statements = rs.Gen_tj.stmt_count;
          fr_repro_path = repro_path }
        :: !failures
  done;
  (* Canonical ladder order, restricted to what was actually seen. *)
  let tiers_exercised =
    List.filter (fun t -> List.mem t !tiers_seen) all_tiers
  in
  let failures = ref (List.rev !failures) in
  (match edits with
  | Some _ when edit_kinds = None && count >= tier_coverage_min_programs ->
    let missing =
      List.filter (fun t -> not (List.mem t tiers_exercised)) all_tiers
    in
    if missing <> [] then
      failures :=
        !failures
        @ [ { fr_index = -1;
              fr_oracle = "edit_tier_coverage";
              fr_detail =
                Printf.sprintf
                  "update tiers never exercised across %d edit chains: %s"
                  count (String.concat ", " missing);
              fr_statements = 0;
              fr_repro_path = None } ]
  | _ -> ());
  { seed; count; max_size; fault; edits; programs_run = count;
    failures = !failures; tiers_exercised }

(* The one-line summary the CI step greps.  Keep the "violations=" key
   stable: .github/workflows/ci.yml matches it verbatim.  The edits and
   tiers fields only appear when edits are enabled, so the historical
   format (which test_cli pins) is unchanged for plain runs.  CI greps
   the full 5-tier "tiers=" value on its --edits run. *)
let summary_line (r : report) : string =
  Printf.sprintf "fuzz: seed=%d count=%d max-size=%d fault=%s%s%s violations=%d"
    r.seed r.count r.max_size
    (Oracle.fault_to_string r.fault)
    (match r.edits with None -> "" | Some n -> Printf.sprintf " edits=%d" n)
    (match (r.edits, r.tiers_exercised) with
    | None, _ | _, [] -> ""
    | Some _, ts -> Printf.sprintf " tiers=%s" (String.concat "," ts))
    (List.length r.failures)
