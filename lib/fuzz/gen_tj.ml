(* Randomized TJ program generator.

   A generated program is a [model]: a small class universe (1-2 families,
   each a root class plus 0-2 subclasses, chains allowed) and a flat array
   of [step option]s.  Step [k], when present, renders to one or a few
   statements in [main]; value-producing steps define a local [v{k}].
   Operands are either [V j] (use [v{j}], a value produced by an EARLIER
   step of the right type) or [D] (a type-directed default literal /
   freshly materialized object).  That indirection is what makes the
   shrinker trivial and structure-preserving: deleting step [j] just
   turns every reference to it into its default — the program stays
   well-formed by construction.

   Termination is by construction too: no recursion, no [while] in
   generated code, and every generated [for] loop has a bound in
   [<= 4] iterations.  Hostile constructs (raw array indices, division
   by a variable, failing downcasts, null receivers, parseInt of
   arbitrary strings) are generated at low weight: runtime faults are
   legitimate outcomes the oracle battery must handle, not generator
   bugs.

   The renderer emits only what the surviving steps need: the
   Vector/HashMap prelude subset (via [Runtime_lib.prelude_of]) and the
   transitively referenced classes, so shrunk repros are small in
   source, not just in step count. *)

type operand = V of int | D

(* Static type of a step's value.  [TObj f] carries the class FAMILY:
   object variables are declared with the family's root class, so any
   runtime class of the family is assignable and any family member is a
   legal cast/instanceof target. *)
type ty = TInt | TStr | TObj of int | TVec | TMap | TArr

(* Restricted statement forms allowed inside generated branches and
   loop bodies. *)
type micro =
  | MAccAdd of operand                   (* acc = acc + I; *)
  | MAccAddIdx                           (* acc = acc + i{k};  loops only *)
  | MSaccCat of operand                  (* sacc = sacc + S; *)
  | MBump of int * operand * operand     (* family, O.bump(I); *)
  | MVecAdd of int * operand * operand   (* obj family, VEC.add(O); *)
  | MStoreFi of int * operand * operand  (* family, O.fi = I; *)

type step =
  (* int producers *)
  | SIntConst of int
  | SIntBin of string * operand * operand  (* "+" | "-" | "*" *)
  | SIntDivK of operand                    (* X / 3 — safe *)
  | SIntDivV of operand * operand          (* X / Y — hostile: may div0 *)
  | SIntMod of operand * int               (* X % k, k >= 1 *)
  | SParse of operand                      (* parseInt(S) — may fault *)
  | SStrLen of operand
  | SCharCode of operand                   (* guarded charCodeAt(0) *)
  | SCallGet of int * operand              (* family, O.get() — virtual *)
  | SLoadFi of int * operand
  | SVecSize of operand
  | SMapSize of operand
  | SArrLoad of operand * operand          (* guarded index *)
  | SArrLoadRaw of operand * operand       (* hostile: may be out of bounds *)
  (* string producers *)
  | SStrConst of string
  | SStrCat of operand * operand
  | SItoa of operand
  | SSubstr of operand                     (* S.substring(0, S.length() % 3) *)
  | SCallTag of int * operand              (* family, O.tag() — virtual *)
  | SLoadFs of int * operand
  | SMapGetStr of operand * int            (* guarded (String) M.get(key) *)
  (* object producers *)
  | SNew of int * int                      (* family, class index *)
  | SCast of int * int * operand           (* family, target class, O *)
  | SGetLink of int * operand
  | SVecGetObj of int * operand * operand  (* family, VEC, index (guarded) *)
  (* container producers *)
  | SNewVec
  | SNewMap
  | SNewArr of int                         (* int[] of literal size *)
  (* effects *)
  | SStoreFi of int * operand * operand
  | SStoreFs of int * operand * operand
  | SSetLink of int * operand * operand
  | SBump of int * operand * operand
  | SVecAddO of int * operand * operand    (* obj family *)
  | SVecAddS of operand * operand          (* VEC.add(S) — poisons casts *)
  | SMapPutStr of operand * int * operand  (* M.put(key, S) *)
  | SArrStore of operand * operand * operand (* guarded A[i] = X *)
  | SInstanceofAcc of int * operand        (* class idx; if (O instanceof C) acc++ *)
  | SAccAdd of operand
  | SSaccCat of operand
  | SPrintInt of operand
  | SPrintStr of operand
  | SBumpNull of int                       (* hostile: null receiver *)
  | SIf of operand * micro list * micro list
  | SLoop of operand * micro list          (* for i < (X % 4 + 1) *)

type cls = { c_name : string; c_family : int; c_parent : string option }

(* Per-class rendering flags, all false at generation time so a fresh
   model renders byte-identically to what it rendered before the flags
   existed.  Edits toggle them to exercise the engine's update tiers:
   - [alt_get]: swap class [i]'s [get()] body for a one-line variant
     that allocates and calls [bump] — a summary-MOVING body edit (the
     line structure is unchanged, so the delta stays [Bodies] and the
     incremental solver must retract/re-derive, not just patch);
   - [aux]: append an uncalled, globally uniquely named method
     [aux<i>()] to class [i] — a dispatch-neutral whole-method
     addition/removal (the [Methods] tier's Patched path);
   - [ovr]: append a [bump] override to SUBclass [i] — a
     dispatch-MOVING whole-method addition/removal (the [Methods]
     tier's resolve path: every old [bump] is a suspect). *)
type model = {
  classes : cls array;
  steps : step option array;
  alt_get : bool array;  (* per class: summary-moving get() variant *)
  aux : bool array;      (* per class: extra uncalled aux<i>() method *)
  ovr : bool array;      (* per SUBclass: bump() override *)
}

let step_count (m : model) : int =
  Array.fold_left (fun a s -> if s = None then a else a + 1) 0 m.steps

let result_ty (s : step) : ty option =
  match s with
  | SIntConst _ | SIntBin _ | SIntDivK _ | SIntDivV _ | SIntMod _ | SParse _
  | SStrLen _ | SCharCode _ | SCallGet _ | SLoadFi _ | SVecSize _ | SMapSize _
  | SArrLoad _ | SArrLoadRaw _ -> Some TInt
  | SStrConst _ | SStrCat _ | SItoa _ | SSubstr _ | SCallTag _ | SLoadFs _
  | SMapGetStr _ -> Some TStr
  | SNew (f, _) | SCast (f, _, _) | SGetLink (f, _) | SVecGetObj (f, _, _) ->
    Some (TObj f)
  | SNewVec -> Some TVec
  | SNewMap -> Some TMap
  | SNewArr _ -> Some TArr
  | SStoreFi _ | SStoreFs _ | SSetLink _ | SBump _ | SVecAddO _ | SVecAddS _
  | SMapPutStr _ | SArrStore _ | SInstanceofAcc _ | SAccAdd _ | SSaccCat _
  | SPrintInt _ | SPrintStr _ | SBumpNull _ | SIf _ | SLoop _ -> None

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let str_consts = [| "7"; "42"; "305"; "x"; "ka"; "0" |]
let map_keys = [| "ka"; "kb"; "kc" |]

let gen ~(seed : int) ~(max_size : int) : model =
  let rng = Fuzz_rng.make seed in
  (* Class universe. *)
  let n_fam = 1 + Fuzz_rng.int rng 2 in
  let classes = ref [] and n_cls = ref 0 in
  let fam_members = Array.make n_fam [] in
  let add_cls c =
    classes := c :: !classes;
    fam_members.(c.c_family) <- fam_members.(c.c_family) @ [ !n_cls ];
    incr n_cls
  in
  for f = 0 to n_fam - 1 do
    add_cls { c_name = Printf.sprintf "R%d" f; c_family = f; c_parent = None };
    let n_subs = Fuzz_rng.int rng 3 in
    for j = 0 to n_subs - 1 do
      let parent = Fuzz_rng.pick rng (fam_members.(f)) in
      let pname = (List.nth (List.rev !classes) parent).c_name in
      add_cls
        { c_name = Printf.sprintf "S%d_%d" f j;
          c_family = f;
          c_parent = Some pname }
    done
  done;
  let classes = Array.of_list (List.rev !classes) in
  let root_of f = List.hd fam_members.(f) in
  (* Ancestors (indices) of class [c] within its family, including [c]. *)
  let rec ancestors c =
    match classes.(c).c_parent with
    | None -> [ c ]
    | Some pname ->
      let p = ref (-1) in
      Array.iteri (fun i cl -> if cl.c_name = pname then p := i) classes;
      c :: ancestors !p
  in
  (* Step generation with typed operand pools. *)
  let n_steps = 4 + Fuzz_rng.int rng (max 1 (max_size - 3)) in
  let steps = Array.make n_steps None in
  let ints = ref [] and strs = ref [] and vecs = ref [] and maps = ref []
  and arrs = ref [] in
  let objs = Array.make n_fam [] in
  (* Statically known runtime class per step, for safe-biased casts. *)
  let runtime = Array.make n_steps None in
  let pick_from pool =
    match pool with
    | [] -> D
    | xs -> if Fuzz_rng.int rng 100 < 85 then V (Fuzz_rng.pick rng xs) else D
  in
  let p_int () = pick_from !ints
  and p_str () = pick_from !strs
  and p_vec () = pick_from !vecs
  and p_map () = pick_from !maps
  and p_arr () = pick_from !arrs in
  let p_obj f = pick_from objs.(f) in
  let p_fam () = Fuzz_rng.int rng n_fam in
  let runtime_of f op =
    match op with
    | D -> Some (root_of f)
    | V j -> runtime.(j)
  in
  let gen_micro ~in_loop () =
    let choices =
      [ (3, `AccAdd); (2, `SaccCat); (2, `Bump); (2, `VecAdd); (2, `StoreFi) ]
      @ (if in_loop then [ (3, `AccAddIdx) ] else [])
    in
    match Fuzz_rng.weighted rng choices with
    | `AccAdd -> MAccAdd (p_int ())
    | `AccAddIdx -> MAccAddIdx
    | `SaccCat -> MSaccCat (p_str ())
    | `Bump ->
      let f = p_fam () in
      MBump (f, p_obj f, p_int ())
    | `VecAdd ->
      let f = p_fam () in
      MVecAdd (f, p_vec (), p_obj f)
    | `StoreFi ->
      let f = p_fam () in
      MStoreFi (f, p_obj f, p_int ())
  in
  let gen_micros ~in_loop lo extra =
    let n = lo + Fuzz_rng.int rng (extra + 1) in
    List.init n (fun _ -> gen_micro ~in_loop ())
  in
  let kinds =
    [ (6, `IntConst); (8, `IntBin); (2, `IntDivK); (1, `IntDivV); (3, `IntMod);
      (2, `Parse); (3, `StrLen); (2, `CharCode); (5, `CallGet); (4, `LoadFi);
      (2, `VecSize); (1, `MapSize); (3, `ArrLoad); (1, `ArrLoadRaw);
      (4, `StrConst); (4, `StrCat); (3, `Itoa); (2, `Substr); (4, `CallTag);
      (2, `LoadFs); (2, `MapGetStr); (6, `New); (3, `Cast); (3, `GetLink);
      (2, `VecGetObj); (3, `NewVec); (2, `NewMap); (3, `NewArr);
      (3, `StoreFi); (2, `StoreFs); (3, `SetLink); (3, `Bump); (4, `VecAddO);
      (1, `VecAddS); (3, `MapPutStr); (2, `ArrStore); (2, `InstanceofAcc);
      (5, `AccAdd); (3, `SaccCat); (2, `If); (2, `Loop); (1, `PrintInt);
      (1, `PrintStr); (1, `BumpNull) ]
  in
  for k = 0 to n_steps - 1 do
    let s =
      match Fuzz_rng.weighted rng kinds with
      | `IntConst -> SIntConst (1 + Fuzz_rng.int rng 50)
      | `IntBin ->
        SIntBin (Fuzz_rng.pick rng [ "+"; "-"; "*" ], p_int (), p_int ())
      | `IntDivK -> SIntDivK (p_int ())
      | `IntDivV -> SIntDivV (p_int (), p_int ())
      | `IntMod -> SIntMod (p_int (), 1 + Fuzz_rng.int rng 6)
      | `Parse -> SParse (p_str ())
      | `StrLen -> SStrLen (p_str ())
      | `CharCode -> SCharCode (p_str ())
      | `CallGet ->
        let f = p_fam () in
        SCallGet (f, p_obj f)
      | `LoadFi ->
        let f = p_fam () in
        SLoadFi (f, p_obj f)
      | `VecSize -> SVecSize (p_vec ())
      | `MapSize -> SMapSize (p_map ())
      | `ArrLoad -> SArrLoad (p_arr (), p_int ())
      | `ArrLoadRaw -> SArrLoadRaw (p_arr (), p_int ())
      | `StrConst ->
        SStrConst str_consts.(Fuzz_rng.int rng (Array.length str_consts))
      | `StrCat -> SStrCat (p_str (), p_str ())
      | `Itoa -> SItoa (p_int ())
      | `Substr -> SSubstr (p_str ())
      | `CallTag ->
        let f = p_fam () in
        SCallTag (f, p_obj f)
      | `LoadFs ->
        let f = p_fam () in
        SLoadFs (f, p_obj f)
      | `MapGetStr ->
        SMapGetStr (p_map (), Fuzz_rng.int rng (Array.length map_keys))
      | `New ->
        let f = p_fam () in
        let c = Fuzz_rng.pick rng fam_members.(f) in
        runtime.(k) <- Some c;
        SNew (f, c)
      | `Cast ->
        let f = p_fam () in
        let o = p_obj f in
        let target =
          if Fuzz_rng.int rng 100 < 90 then
            (* safe-biased: an ancestor of the (known) runtime class *)
            match runtime_of f o with
            | Some rc -> Fuzz_rng.pick rng (ancestors rc)
            | None -> root_of f
          else Fuzz_rng.pick rng fam_members.(f)
        in
        runtime.(k) <- runtime_of f o;
        SCast (f, target, o)
      | `GetLink ->
        let f = p_fam () in
        SGetLink (f, p_obj f)
      | `VecGetObj ->
        let f = p_fam () in
        SVecGetObj (f, p_vec (), p_int ())
      | `NewVec -> SNewVec
      | `NewMap -> SNewMap
      | `NewArr -> SNewArr (2 + Fuzz_rng.int rng 5)
      | `StoreFi ->
        let f = p_fam () in
        SStoreFi (f, p_obj f, p_int ())
      | `StoreFs ->
        let f = p_fam () in
        SStoreFs (f, p_obj f, p_str ())
      | `SetLink ->
        let f = p_fam () in
        SSetLink (f, p_obj f, p_obj f)
      | `Bump ->
        let f = p_fam () in
        SBump (f, p_obj f, p_int ())
      | `VecAddO ->
        let f = p_fam () in
        SVecAddO (f, p_vec (), p_obj f)
      | `VecAddS -> SVecAddS (p_vec (), p_str ())
      | `MapPutStr ->
        SMapPutStr (p_map (), Fuzz_rng.int rng (Array.length map_keys), p_str ())
      | `ArrStore -> SArrStore (p_arr (), p_int (), p_int ())
      | `InstanceofAcc ->
        let f = p_fam () in
        let c = Fuzz_rng.pick rng fam_members.(f) in
        SInstanceofAcc (c, p_obj f)
      | `AccAdd -> SAccAdd (p_int ())
      | `SaccCat -> SSaccCat (p_str ())
      | `If ->
        SIf (p_int (), gen_micros ~in_loop:false 1 2, gen_micros ~in_loop:false 0 1)
      | `Loop -> SLoop (p_int (), gen_micros ~in_loop:true 1 2)
      | `PrintInt -> SPrintInt (p_int ())
      | `PrintStr -> SPrintStr (p_str ())
      | `BumpNull -> SBumpNull (p_fam ())
    in
    steps.(k) <- Some s;
    (match result_ty s with
     | Some TInt -> ints := k :: !ints
     | Some TStr -> strs := k :: !strs
     | Some (TObj f) -> objs.(f) <- k :: objs.(f)
     | Some TVec -> vecs := k :: !vecs
     | Some TMap -> maps := k :: !maps
     | Some TArr -> arrs := k :: !arrs
     | None -> ())
  done;
  let n_cls = Array.length classes in
  { classes;
    steps;
    alt_get = Array.make n_cls false;
    aux = Array.make n_cls false;
    ovr = Array.make n_cls false }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

type rendered = {
  src : string;        (* self-contained TJ program *)
  seed_lines : int list;  (* 1-based lines of the two trailing prints *)
  stmt_count : int;    (* statements rendered for the steps *)
}

let contains ~(sub : string) (s : string) : bool =
  let sl = String.length sub and l = String.length s in
  let rec go i = i + sl <= l && (String.sub s i sl = sub || go (i + 1)) in
  go 0

let split_lines (s : string) : string list =
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

let render (m : model) : rendered =
  let n = Array.length m.steps in
  let live j = j >= 0 && j < n && m.steps.(j) <> None in
  let ty_of j =
    match m.steps.(j) with None -> None | Some s -> result_ty s
  in
  let root_of f =
    let r = ref (-1) in
    Array.iteri
      (fun i c -> if c.c_family = f && c.c_parent = None && !r < 0 then r := i)
      m.classes;
    !r
  in
  let cname c = m.classes.(c).c_name in
  let stmts = ref 0 in
  let body = ref [] in
  let emit ?(stmt = 1) line =
    body := line :: !body;
    stmts := !stmts + stmt
  in
  (* Resolve an operand of required type [ty]; may emit an aux
     declaration line (for non-scalar defaults) at [indent]. *)
  let resolve ~indent ~k ~pos ty op : string =
    let valid j = live j && ty_of j = Some ty in
    match op with
    | V j when valid j -> Printf.sprintf "v%d" j
    | _ -> (
      match ty with
      | TInt -> "7"
      | TStr -> "\"7\""
      | TObj f ->
        let r = cname (root_of f) in
        let v = Printf.sprintf "v%dd%d" k !pos in
        incr pos;
        emit (Printf.sprintf "%s%s %s = new %s();" indent r v r);
        v
      | TVec ->
        let v = Printf.sprintf "v%dd%d" k !pos in
        incr pos;
        emit (Printf.sprintf "%sVector %s = new Vector();" indent v);
        v
      | TMap ->
        let v = Printf.sprintf "v%dd%d" k !pos in
        incr pos;
        emit (Printf.sprintf "%sHashMap %s = new HashMap();" indent v);
        v
      | TArr ->
        let v = Printf.sprintf "v%dd%d" k !pos in
        incr pos;
        emit (Printf.sprintf "%sint[] %s = new int[4];" indent v);
        v)
  in
  let arr_len op =
    match op with
    | V j when live j && ty_of j = Some TArr -> (
      match m.steps.(j) with Some (SNewArr s) -> s | _ -> 4)
    | _ -> 4
  in
  let render_micro ~indent ~k ~pos mi =
    match mi with
    | MAccAdd x ->
      let e = resolve ~indent ~k ~pos TInt x in
      emit (Printf.sprintf "%sacc = acc + %s;" indent e)
    | MAccAddIdx -> emit (Printf.sprintf "%sacc = acc + i%d;" indent k)
    | MSaccCat s ->
      let e = resolve ~indent ~k ~pos TStr s in
      emit (Printf.sprintf "%ssacc = sacc + %s;" indent e)
    | MBump (f, o, x) ->
      let eo = resolve ~indent ~k ~pos (TObj f) o in
      let ex = resolve ~indent ~k ~pos TInt x in
      emit (Printf.sprintf "%s%s.bump(%s);" indent eo ex)
    | MVecAdd (f, v, o) ->
      let ev = resolve ~indent ~k ~pos TVec v in
      let eo = resolve ~indent ~k ~pos (TObj f) o in
      emit (Printf.sprintf "%s%s.add(%s);" indent ev eo)
    | MStoreFi (f, o, x) ->
      let eo = resolve ~indent ~k ~pos (TObj f) o in
      let ex = resolve ~indent ~k ~pos TInt x in
      emit (Printf.sprintf "%s%s.fi = %s;" indent eo ex)
  in
  let ind = "  " and ind2 = "    " in
  Array.iteri
    (fun k sopt ->
      match sopt with
      | None -> ()
      | Some s ->
        let pos = ref 0 in
        let r ty op = resolve ~indent:ind ~k ~pos ty op in
        (match s with
         | SIntConst c -> emit (Printf.sprintf "  int v%d = %d;" k c)
         | SIntBin (op, a, b) ->
           let ea = r TInt a and eb = r TInt b in
           emit (Printf.sprintf "  int v%d = %s %s %s;" k ea op eb)
         | SIntDivK a ->
           let ea = r TInt a in
           emit (Printf.sprintf "  int v%d = %s / 3;" k ea)
         | SIntDivV (a, b) ->
           let ea = r TInt a and eb = r TInt b in
           emit (Printf.sprintf "  int v%d = %s / %s;" k ea eb)
         | SIntMod (a, d) ->
           let ea = r TInt a in
           emit (Printf.sprintf "  int v%d = %s %% %d;" k ea d)
         | SParse a ->
           let ea = r TStr a in
           emit (Printf.sprintf "  int v%d = parseInt(%s);" k ea)
         | SStrLen a ->
           let ea = r TStr a in
           emit (Printf.sprintf "  int v%d = %s.length();" k ea)
         | SCharCode a ->
           let ea = r TStr a in
           emit (Printf.sprintf "  int v%d = 0;" k);
           emit ~stmt:2
             (Printf.sprintf "  if (%s.length() > 0) { v%d = %s.charCodeAt(0); }"
                ea k ea)
         | SCallGet (f, o) ->
           let eo = r (TObj f) o in
           emit (Printf.sprintf "  int v%d = %s.get();" k eo)
         | SLoadFi (f, o) ->
           let eo = r (TObj f) o in
           emit (Printf.sprintf "  int v%d = %s.fi;" k eo)
         | SVecSize v ->
           let ev = r TVec v in
           emit (Printf.sprintf "  int v%d = %s.size();" k ev)
         | SMapSize mo ->
           let em = r TMap mo in
           emit (Printf.sprintf "  int v%d = %s.size();" k em)
         | SArrLoad (a, i) ->
           let len = arr_len a in
           let ea = r TArr a and ei = r TInt i in
           emit ~stmt:2
             (Printf.sprintf
                "  int v%di = %s %% %d; if (v%di < 0) { v%di = 0 - v%di; }" k ei
                len k k k);
           emit (Printf.sprintf "  int v%d = %s[v%di];" k ea k)
         | SArrLoadRaw (a, i) ->
           let ea = r TArr a and ei = r TInt i in
           emit (Printf.sprintf "  int v%d = %s[%s];" k ea ei)
         | SStrConst s -> emit (Printf.sprintf "  String v%d = \"%s\";" k s)
         | SStrCat (a, b) ->
           let ea = r TStr a and eb = r TStr b in
           emit (Printf.sprintf "  String v%d = %s + %s;" k ea eb)
         | SItoa a ->
           let ea = r TInt a in
           emit (Printf.sprintf "  String v%d = itoa(%s);" k ea)
         | SSubstr a ->
           let ea = r TStr a in
           emit
             (Printf.sprintf "  String v%d = %s.substring(0, %s.length() %% 3);"
                k ea ea)
         | SCallTag (f, o) ->
           let eo = r (TObj f) o in
           emit (Printf.sprintf "  String v%d = %s.tag();" k eo)
         | SLoadFs (f, o) ->
           let eo = r (TObj f) o in
           emit (Printf.sprintf "  String v%d = %s.fs;" k eo)
         | SMapGetStr (mo, key) ->
           let em = r TMap mo in
           let kk = map_keys.(key) in
           emit (Printf.sprintf "  String v%d = \"7\";" k);
           emit ~stmt:2
             (Printf.sprintf
                "  if (%s.containsKey(\"%s\")) { v%d = (String) %s.get(\"%s\"); }"
                em kk k em kk)
         | SNew (f, c) ->
           emit
             (Printf.sprintf "  %s v%d = new %s();" (cname (root_of f)) k
                (cname c))
         | SCast (f, c, o) ->
           let eo = r (TObj f) o in
           emit
             (Printf.sprintf "  %s v%d = (%s) %s;" (cname (root_of f)) k
                (cname c) eo)
         | SGetLink (f, o) ->
           let eo = r (TObj f) o in
           emit
             (Printf.sprintf "  %s v%d = %s.getLink();" (cname (root_of f)) k eo)
         | SVecGetObj (f, v, i) ->
           let root = cname (root_of f) in
           let ev = r TVec v and ei = r TInt i in
           emit (Printf.sprintf "  %s v%d = new %s();" root k root);
           emit (Printf.sprintf "  if (%s.size() > 0) {" ev);
           emit ~stmt:2
             (Printf.sprintf
                "    int v%di = %s %% %s.size(); if (v%di < 0) { v%di = 0 - v%di; }"
                k ei ev k k k);
           emit (Printf.sprintf "    v%d = (%s) %s.get(v%di);" k root ev k);
           emit ~stmt:0 "  }"
         | SNewVec -> emit (Printf.sprintf "  Vector v%d = new Vector();" k)
         | SNewMap -> emit (Printf.sprintf "  HashMap v%d = new HashMap();" k)
         | SNewArr sz -> emit (Printf.sprintf "  int[] v%d = new int[%d];" k sz)
         | SStoreFi (f, o, x) ->
           let eo = r (TObj f) o and ex = r TInt x in
           emit (Printf.sprintf "  %s.fi = %s;" eo ex)
         | SStoreFs (f, o, s) ->
           let eo = r (TObj f) o and es = r TStr s in
           emit (Printf.sprintf "  %s.fs = %s;" eo es)
         | SSetLink (f, o1, o2) ->
           let e1 = r (TObj f) o1 and e2 = r (TObj f) o2 in
           emit (Printf.sprintf "  %s.setLink(%s);" e1 e2)
         | SBump (f, o, x) ->
           let eo = r (TObj f) o and ex = r TInt x in
           emit (Printf.sprintf "  %s.bump(%s);" eo ex)
         | SVecAddO (f, v, o) ->
           let ev = r TVec v and eo = r (TObj f) o in
           emit (Printf.sprintf "  %s.add(%s);" ev eo)
         | SVecAddS (v, s) ->
           let ev = r TVec v and es = r TStr s in
           emit (Printf.sprintf "  %s.add(%s);" ev es)
         | SMapPutStr (mo, key, s) ->
           let em = r TMap mo and es = r TStr s in
           emit (Printf.sprintf "  %s.put(\"%s\", %s);" em map_keys.(key) es)
         | SArrStore (a, i, x) ->
           let len = arr_len a in
           let ea = r TArr a and ei = r TInt i and ex = r TInt x in
           emit ~stmt:2
             (Printf.sprintf
                "  int v%di = %s %% %d; if (v%di < 0) { v%di = 0 - v%di; }" k ei
                len k k k);
           emit (Printf.sprintf "  %s[v%di] = %s;" ea k ex)
         | SInstanceofAcc (c, o) ->
           let f = m.classes.(c).c_family in
           let eo = r (TObj f) o in
           emit ~stmt:2
             (Printf.sprintf "  if (%s instanceof %s) { acc = acc + 1; }" eo
                (cname c))
         | SAccAdd x ->
           let ex = r TInt x in
           emit (Printf.sprintf "  acc = acc + %s;" ex)
         | SSaccCat s ->
           let es = r TStr s in
           emit (Printf.sprintf "  sacc = sacc + %s;" es)
         | SPrintInt x ->
           let ex = r TInt x in
           emit (Printf.sprintf "  print(itoa(%s));" ex)
         | SPrintStr s ->
           let es = r TStr s in
           emit (Printf.sprintf "  print(%s);" es)
         | SBumpNull f ->
           emit
             (Printf.sprintf "  %s v%dn = null;" (cname (root_of f)) k);
           emit (Printf.sprintf "  v%dn.bump(7);" k)
         | SIf (c, th, el) ->
           let ec = r TInt c in
           emit (Printf.sprintf "  if (%s %% 2 == 0) {" ec);
           List.iter (render_micro ~indent:ind2 ~k ~pos) th;
           if el <> [] then begin
             emit ~stmt:0 "  } else {";
             List.iter (render_micro ~indent:ind2 ~k ~pos) el
           end;
           emit ~stmt:0 "  }"
         | SLoop (b, bodymi) ->
           let eb = r TInt b in
           emit
             (Printf.sprintf "  for (int i%d = 0; i%d < (%s %% 4 + 1); i%d++) {"
                k k eb k);
           List.iter (render_micro ~indent:ind2 ~k ~pos) bodymi;
           emit ~stmt:0 "  }"))
    m.steps;
  let body_lines = List.rev !body in
  let body_txt = String.concat "\n" body_lines in
  (* Class universe actually referenced by the surviving steps. *)
  let n_cls = Array.length m.classes in
  let used = Array.make n_cls false in
  let idx_of_name nm =
    let r = ref (-1) in
    Array.iteri (fun i c -> if c.c_name = nm then r := i) m.classes;
    !r
  in
  Array.iteri
    (fun i c ->
      if contains ~sub:(c.c_name ^ " ") body_txt
         || contains ~sub:(c.c_name ^ "(") body_txt
         || contains ~sub:(c.c_name ^ ")") body_txt
      then used.(i) <- true)
    m.classes;
  (* ancestor closure: an emitted subclass needs its parents *)
  let rec close i =
    match m.classes.(i).c_parent with
    | None -> ()
    | Some p ->
      let pi = idx_of_name p in
      if not used.(pi) then begin
        used.(pi) <- true;
        close pi
      end
  in
  Array.iteri (fun i u -> if u then close i) used;
  let class_lines = ref [] in
  Array.iteri
    (fun i c ->
      if used.(i) then begin
        let nm = c.c_name in
        (* Flag-dependent extra members keep to ONE line each, inserted
           just before the class's closing brace: a whole-method
           insertion/removal whose net lines sit entirely inside the
           new/old method's own span, which is exactly what the
           [Slice_front.Delta] Methods tier admits. *)
        let aux_lines =
          if m.aux.(i) then
            [ Printf.sprintf
                "  int aux%d() { %s a = new %s(); a.setLink(a); return a.fi; }"
                i nm nm ]
          else []
        in
        match c.c_parent with
        | None ->
          class_lines :=
            !class_lines
            @ [ Printf.sprintf "class %s {" nm;
                "  int fi;";
                "  String fs;";
                Printf.sprintf "  %s link;" nm;
                Printf.sprintf
                  "  %s() { this.fi = %d; this.fs = \"t%d\"; this.link = this; }"
                  nm (i + 1) i;
                Printf.sprintf "  String tag() { return \"%s\"; }" nm;
                (if m.alt_get.(i) then
                   Printf.sprintf
                     "  int get() { %s h = new %s(); h.bump(this.fi); return h.fi; }"
                     nm nm
                 else "  int get() { return this.fi; }");
                "  void bump(int n) { this.fi = this.fi + n; }";
                Printf.sprintf "  void setLink(%s o) { this.link = o; }" nm;
                Printf.sprintf "  %s getLink() { return this.link; }" nm ]
            @ aux_lines
            @ [ "}" ]
        | Some p ->
          class_lines :=
            !class_lines
            @ [ Printf.sprintf "class %s extends %s {" nm p;
                Printf.sprintf
                  "  %s() { super(); this.fi = %d; this.fs = \"t%d\"; }" nm
                  (i + 2) i;
                Printf.sprintf "  String tag() { return \"%s\"; }" nm;
                (if m.alt_get.(i) then
                   Printf.sprintf
                     "  int get() { %s h = new %s(); h.bump(this.fi * %d); return h.fi; }"
                     nm nm (i + 2)
                 else Printf.sprintf "  int get() { return this.fi * %d; }" (i + 2)) ]
            @ (if m.ovr.(i) then
                 [ Printf.sprintf
                     "  void bump(int n) { %s o = new %s(); o.fi = n; this.link = o; }"
                     nm nm ]
               else [])
            @ aux_lines
            @ [ "}" ]
      end)
    m.classes;
  (* Prelude subset: only containers the body mentions. *)
  let containers =
    (if contains ~sub:"Vector" body_txt then [ `Vector ] else [])
    @ (if contains ~sub:"HashMap" body_txt then [ `HashMap ] else [])
  in
  let prelude = Slice_workloads.Runtime_lib.prelude_of containers in
  let header_lines = split_lines prelude @ !class_lines in
  let all =
    header_lines
    @ [ "void main(String[] args) {"; "  int acc = 0;"; "  String sacc = \"\";" ]
    @ body_lines
    @ [ "  print(itoa(acc));"; "  print(sacc);"; "}" ]
  in
  let total = List.length all in
  { src = String.concat "\n" all ^ "\n";
    seed_lines = [ total - 2; total - 1 ];
    stmt_count = !stmts }

(* ------------------------------------------------------------------ *)
(* Scaled mega-workloads (ROADMAP item 3)                              *)
(* ------------------------------------------------------------------ *)

(* [generate_scaled] targets the 10^5-10^6-statement regime the paper's
   miniature suite never reaches.  Unlike [gen]/[render] (a step model
   sized for shrinkable fuzz repros), the scaled generator emits source
   directly, in repeating ~4-line blocks grouped into top-level part
   functions (`int partK(int acc, Vector vec, HashMap map)`) that main
   threads an accumulator through.  Structure:

   - deep call chains: every family root carries w0..w{D} with wi
     calling w{i+1} and subclasses overriding mid-chain hops, so one
     `o.w0(..)` dispatches through D+1 frames;
   - wide class families: family count scales with the target size,
     each a root plus two overriding subclasses;
   - container-heavy heaps: a bounded pool of Vectors/HashMaps created
     in main and threaded round-robin into parts.  The pool bound keeps
     the object-sensitive context space finite; the round-robin ties
     each container index to ONE class family so the in-block downcast
     on `vec.get(0)` is safe by construction.

   Programs are well-formed and terminating by construction: no
   recursion, the only loops are `for (i < 3)`, every arithmetic
   operand stays non-negative (no division, guarded modulus operands),
   and parseInt only ever sees itoa output.

   Statement counts are calibrated, not guessed: the requested [stmts]
   is in front-end statement ids ([Program.stmt_count]), so the
   generator loads a small pilot through [Frontend] to measure the
   per-part lowering cost and solves for the part count.  That keeps
   the +/-5%% accuracy contract independent of lowering changes. *)

type scaled = {
  sc_src : string;
  sc_stmt_count : int;  (* measured [Program.stmt_count] of [sc_src] *)
  sc_classes : int;     (* generated classes (prelude excluded) *)
  sc_methods : int;     (* generated methods, parts and main included *)
  sc_parts : int;
  sc_seed_line : int;   (* 1-based line of the trailing print(itoa(acc)) *)
}

let scaled_keys = [| "ka"; "kb"; "kc"; "kd" |]
let scaled_chain_depth = 8

let emit_scaled_src ~seed ~families ~pool ~parts ~blocks_per_part :
    string * int =
  let rng = Fuzz_rng.make seed in
  let buf = Buffer.create (1 lsl 16) in
  let lines = ref 0 in
  let add s =
    Buffer.add_string buf s;
    String.iter (fun c -> if c = '\n' then incr lines) s
  in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n';
        incr lines)
      fmt
  in
  add (Slice_workloads.Runtime_lib.prelude_of [ `Vector; `HashMap ]);
  (* class families *)
  for f = 0 to families - 1 do
    line "class R%d {" f;
    line "  int fi;";
    line "  String fs;";
    line "  R%d link;" f;
    line "  R%d() { this.fi = %d; this.fs = \"r%d\"; this.link = this; }" f
      (f + 1) f;
    line "  String tag() { return \"R%d\"; }" f;
    line "  int get() { return this.fi; }";
    line "  void bump(int n) { this.fi = this.fi + n; }";
    line "  void setLink(R%d o) { this.link = o; }" f;
    line "  R%d getLink() { return this.link; }" f;
    for i = 0 to scaled_chain_depth - 1 do
      line "  int w%d(int n) { return this.w%d(n + %d); }" i (i + 1)
        ((i mod 3) + 1)
    done;
    line "  int w%d(int n) { this.fi = this.fi + n; return this.fi; }"
      scaled_chain_depth;
    line "}";
    line "class S%d_0 extends R%d {" f f;
    line "  S%d_0() { super(); this.fi = %d; this.fs = \"s%d0\"; }" f (f + 2) f;
    line "  String tag() { return \"S%d_0\"; }" f;
    line "  int get() { return this.fi * 2; }";
    line "  int w4(int n) { return this.w5(n + 2); }";
    line "}";
    line "class S%d_1 extends R%d {" f f;
    line "  S%d_1() { super(); this.fi = %d; this.fs = \"s%d1\"; }" f (f + 3) f;
    line "  String tag() { return \"S%d_1\"; }" f;
    line "  int w6(int n) { return this.w7(n + 5); }";
    line "}"
  done;
  (* part functions *)
  let block_kinds =
    [ (3, `Alloc); (3, `Vec); (2, `Map); (2, `Field); (2, `Str); (1, `Loop) ]
  in
  for j = 0 to parts - 1 do
    let f = j mod pool mod families in
    line "int part%d(int acc, Vector vec, HashMap map) {" j;
    line "  int a = acc;";
    line "  R%d cur = new R%d();" f f;
    line "  R%d prev = new R%d();" f f;
    for k = 0 to blocks_per_part - 1 do
      match Fuzz_rng.weighted rng block_kinds with
      | `Alloc ->
        let c =
          match Fuzz_rng.int rng 3 with
          | 0 -> Printf.sprintf "R%d" f
          | 1 -> Printf.sprintf "S%d_0" f
          | _ -> Printf.sprintf "S%d_1" f
        in
        line "  R%d o%d = new %s();" f k c;
        line "  cur.setLink(o%d);" k;
        line "  a = a + o%d.w0(a %% 9 + 1);" k;
        line "  prev = cur;";
        line "  cur = o%d;" k
      | `Vec ->
        line "  vec.add(cur);";
        line
          "  if (vec.size() > 0) { R%d g%d = (R%d) vec.get(0); a = a + g%d.get(); }"
          f k f k
      | `Map ->
        let key = scaled_keys.(Fuzz_rng.int rng (Array.length scaled_keys)) in
        line "  map.put(\"%s\", itoa(a %% 97));" key;
        line
          "  if (map.containsKey(\"%s\")) { String s%d = (String) map.get(\"%s\"); a = a + s%d.length(); }"
          key k key k
      | `Field ->
        line "  cur.fi = a %% 1001;";
        line "  int t%d = prev.get() %% 17;" k;
        line "  cur.bump(t%d);" k;
        line "  R%d l%d = cur.getLink();" f k;
        line "  a = a + l%d.fi;" k
      | `Str ->
        line "  String s%d = itoa(a %% 100);" k;
        line "  a = a + s%d.length();" k;
        line "  a = a + parseInt(s%d);" k
      | `Loop ->
        line "  for (int i%d = 0; i%d < 3; i%d++) { a = a + i%d; cur.bump(i%d); }"
          k k k k k
    done;
    line "  return a;";
    line "}"
  done;
  (* main: container pool + accumulator threading *)
  line "void main(String[] args) {";
  line "  int acc = 1;";
  for i = 0 to pool - 1 do
    line "  Vector c%d = new Vector();" i;
    line "  HashMap h%d = new HashMap();" i
  done;
  for j = 0 to parts - 1 do
    let pi = j mod pool in
    line "  acc = part%d(acc, c%d, h%d);" j pi pi
  done;
  let seed_line = !lines + 1 in
  line "  print(itoa(acc));";
  line "}";
  (Buffer.contents buf, seed_line)

let generate_scaled ~(seed : int) ~(stmts : int) : scaled =
  if stmts < 2_000 then
    invalid_arg "Gen_tj.generate_scaled: stmts must be >= 2000";
  let families = max 3 (min 12 (3 + (stmts / 100_000))) in
  let pool = max families (min 48 (4 + (stmts / 25_000))) in
  (* Part size sets the calibration granularity: one part is the
     smallest unit the count can move by, so small requests get small
     parts (a 50-block part is ~8% of a 5k-statement program — outside
     the +-5% contract by construction). *)
  let blocks_per_part = max 5 (min 50 (stmts / 400)) in
  let emit parts =
    emit_scaled_src ~seed ~families ~pool ~parts ~blocks_per_part
  in
  let measure src =
    Slice_ir.Program.stmt_count
      (Slice_front.Frontend.load_exn ~file:"scaled.tj" src)
  in
  (* Calibrate: fixed overhead (prelude + classes + main) from a
     zero-part pilot, per-part slope from a multi-part pilot sharing the
     same RNG prefix.  12 parts = 600 blocks, enough samples that the
     mean block cost is within ~2% of the long-run mean. *)
  let overhead = measure (fst (emit 0)) in
  let pilot_parts = 12 in
  let pilot_cost = measure (fst (emit pilot_parts)) in
  let per_part =
    float_of_int (pilot_cost - overhead) /. float_of_int pilot_parts
  in
  let parts0 =
    max 1
      (int_of_float
         (Float.round (float_of_int (stmts - overhead) /. per_part)))
  in
  (* The pilot slope is a long-run mean; the random block mix makes
     individual parts vary, so the linear estimate can miss by a few
     percent.  Measure each candidate, re-derive the slope from the
     measurement itself, and correct the part count (the RNG stream is
     per-part sequential, so a shorter or longer emission shares its
     prefix) keeping the best candidate seen.  Large requests converge
     on the first emission, so extra loads are only ever paid where
     loads are cheap. *)
  let rec refine parts attempts best =
    let src, seed_line = emit parts in
    let actual = measure src in
    let miss = abs (actual - stmts) in
    let best =
      match best with
      | Some (_, _, best_actual, _) when abs (best_actual - stmts) <= miss ->
        best
      | _ -> Some (src, seed_line, actual, parts)
    in
    if float_of_int miss /. float_of_int stmts <= 0.02 || attempts <= 0 then
      Option.get best
    else
      let slope = float_of_int (actual - overhead) /. float_of_int parts in
      let delta =
        int_of_float (Float.round (float_of_int (stmts - actual) /. slope))
      in
      let delta = if delta = 0 then compare stmts actual else delta in
      let parts' = max 1 (parts + delta) in
      if parts' = parts then Option.get best
      else refine parts' (attempts - 1) best
  in
  let src, seed_line, actual, parts = refine parts0 4 None in
  { sc_src = src;
    sc_stmt_count = actual;
    sc_classes = 3 * families;
    sc_methods = (22 * families) + parts + 1;
    sc_parts = parts;
    sc_seed_line = seed_line }

(* ------------------------------------------------------------------ *)
(* Edits (incremental re-analysis fuzzing)                             *)
(* ------------------------------------------------------------------ *)

(* One random edit to a model, for fuzzing [Engine.update] against
   from-scratch loads.  The kinds map onto the incremental tiers they
   tend to exercise (noop / patched / resolved-incremental /
   resolved-fresh / rebuilt):
   - [Tweak]: change one literal/operator in place — line structure is
     preserved, so the delta classifies as a body edit, and pointer-free
     tweaks keep constraint summaries (the Patched path);
   - [Replace]: swap a step for a fresh one of the same result type — a
     body edit whose summary may move.  The changed method is [main],
     whose retraction cone is most of the derivation, so the delta
     solver usually refuses and re-solves (Resolved-fresh); when the
     rendered line count shifts the delta is structural (Rebuilt);
   - [Delete] / [Insert]: remove or re-add a whole step — main's line
     structure changes, the full Rebuilt fallback;
   - [Swap_body]: toggle a class's summary-moving [get()] body variant
     (see [model.alt_get]) — a small-cone body edit, the
     Resolved-incremental sweet spot;
   - [Add_aux] / [Remove_aux]: toggle an uncalled, uniquely named
     [aux<i>()] method on a class — dispatch-neutral whole-method
     edits, the Methods tier's Patched path;
   - [Add_override] / [Remove_override]: toggle a [bump] override on a
     subclass — dispatch-moving whole-method edits, the Methods tier's
     resolve path (Resolved-incremental or -fresh by cone size).
   Edited models stay well-formed by construction: replacements keep
   the result type, deletions fall back to typed defaults at render
   time, fresh operands only name EARLIER live steps (the [v{j}]
   declaration-order invariant), and flag edits only target classes the
   current rendering actually emits (flags on unrendered classes would
   be source-invisible noops). *)
type edit_kind =
  | Tweak
  | Replace
  | Delete
  | Insert
  | Swap_body
  | Add_aux
  | Remove_aux
  | Add_override
  | Remove_override

let edit_kind_to_string = function
  | Tweak -> "tweak"
  | Replace -> "replace"
  | Delete -> "delete"
  | Insert -> "insert"
  | Swap_body -> "swap-body"
  | Add_aux -> "add-aux"
  | Remove_aux -> "remove-aux"
  | Add_override -> "add-override"
  | Remove_override -> "remove-override"

let all_edit_kinds =
  [ Tweak; Replace; Delete; Insert; Swap_body; Add_aux; Remove_aux;
    Add_override; Remove_override ]

let edit_kind_of_string (s : string) : edit_kind option =
  List.find_opt (fun k -> edit_kind_to_string k = s) all_edit_kinds

let edit ?(kinds : edit_kind list option) ~(rng : Fuzz_rng.t) (m : model) :
    model * edit_kind =
  let n = Array.length m.steps in
  let idxs = List.init n Fun.id in
  let live = List.filter (fun k -> m.steps.(k) <> None) idxs in
  let holes = List.filter (fun k -> m.steps.(k) = None) idxs in
  let ty_of j = match m.steps.(j) with None -> None | Some s -> result_ty s in
  let with_step k s =
    let steps = Array.copy m.steps in
    steps.(k) <- s;
    { m with steps }
  in
  let p ty k =
    match List.filter (fun j -> j < k && ty_of j = Some ty) live with
    | [] -> D
    | xs -> if Fuzz_rng.int rng 100 < 80 then V (Fuzz_rng.pick rng xs) else D
  in
  let fam_members f =
    let out = ref [] in
    Array.iteri (fun i c -> if c.c_family = f then out := i :: !out) m.classes;
    List.rev !out
  in
  let fresh_int k =
    match
      Fuzz_rng.weighted rng [ (3, `Const); (3, `Bin); (2, `Mod); (1, `Len) ]
    with
    | `Const -> SIntConst (1 + Fuzz_rng.int rng 50)
    | `Bin -> SIntBin (Fuzz_rng.pick rng [ "+"; "-"; "*" ], p TInt k, p TInt k)
    | `Mod -> SIntMod (p TInt k, 1 + Fuzz_rng.int rng 6)
    | `Len -> SStrLen (p TStr k)
  in
  let fresh_str k =
    match Fuzz_rng.weighted rng [ (3, `Const); (2, `Cat); (2, `Itoa) ] with
    | `Const -> SStrConst str_consts.(Fuzz_rng.int rng (Array.length str_consts))
    | `Cat -> SStrCat (p TStr k, p TStr k)
    | `Itoa -> SItoa (p TInt k)
  in
  let fresh_effect k =
    match Fuzz_rng.weighted rng [ (3, `Acc); (2, `Sacc); (1, `Print) ] with
    | `Acc -> SAccAdd (p TInt k)
    | `Sacc -> SSaccCat (p TStr k)
    | `Print -> SPrintInt (p TInt k)
  in
  (* literal tweaks: steps whose rendering differs in exactly one token *)
  let tweakable =
    List.filter
      (fun k ->
        match m.steps.(k) with
        | Some (SIntConst _ | SStrConst _ | SIntBin _ | SIntMod _) -> true
        | _ -> false)
      live
  in
  (* Flag-edit candidates: only classes the current rendering emits. *)
  let rsrc = (render m).src in
  let rendered_classes =
    List.filter
      (fun i -> contains ~sub:("class " ^ m.classes.(i).c_name ^ " ") rsrc)
      (List.init (Array.length m.classes) Fun.id)
  in
  let subclasses =
    List.filter (fun i -> m.classes.(i).c_parent <> None) rendered_classes
  in
  let aux_off = List.filter (fun i -> not m.aux.(i)) rendered_classes in
  let aux_on = List.filter (fun i -> m.aux.(i)) rendered_classes in
  let ovr_off = List.filter (fun i -> not m.ovr.(i)) subclasses in
  let ovr_on = List.filter (fun i -> m.ovr.(i)) subclasses in
  let with_flag sel i v =
    let alt_get = Array.copy m.alt_get
    and aux = Array.copy m.aux
    and ovr = Array.copy m.ovr in
    (match sel with
    | `Get -> alt_get.(i) <- v
    | `Aux -> aux.(i) <- v
    | `Ovr -> ovr.(i) <- v);
    { m with alt_get; aux; ovr }
  in
  let allowed k = match kinds with None -> true | Some ks -> List.mem k ks in
  let choices =
    (if tweakable <> [] then [ (4, Tweak) ] else [])
    @ (if live <> [] then [ (3, Replace); (2, Delete) ] else [])
    @ (if holes <> [] then [ (2, Insert) ] else [])
    @ (if rendered_classes <> [] then [ (3, Swap_body) ] else [])
    @ (if aux_off <> [] then [ (2, Add_aux) ] else [])
    @ (if aux_on <> [] then [ (2, Remove_aux) ] else [])
    @ (if ovr_off <> [] then [ (2, Add_override) ] else [])
    @ if ovr_on <> [] then [ (2, Remove_override) ] else []
  in
  let choices = List.filter (fun (_, k) -> allowed k) choices in
  if choices = [] then (m, Tweak)
  else
    match Fuzz_rng.weighted rng choices with
    | Tweak ->
      let k = Fuzz_rng.pick rng tweakable in
      (* offset picks guarantee the new literal differs from the old *)
      let s' =
        match m.steps.(k) with
        | Some (SIntConst c) ->
          SIntConst (1 + ((c + Fuzz_rng.int rng 49) mod 50))
        | Some (SStrConst s) ->
          let cur = ref 0 in
          Array.iteri (fun j v -> if v = s then cur := j) str_consts;
          let len = Array.length str_consts in
          SStrConst str_consts.((!cur + 1 + Fuzz_rng.int rng (len - 1)) mod len)
        | Some (SIntBin (op, a, b)) ->
          SIntBin
            (Fuzz_rng.pick rng (List.filter (( <> ) op) [ "+"; "-"; "*" ]), a, b)
        | Some (SIntMod (a, d)) ->
          SIntMod (a, 1 + ((d + Fuzz_rng.int rng 5) mod 6))
        | _ -> assert false
      in
      (with_step k (Some s'), Tweak)
    | Replace ->
      let k = Fuzz_rng.pick rng live in
      let s' =
        match ty_of k with
        | Some TInt -> fresh_int k
        | Some TStr -> fresh_str k
        | Some (TObj f) -> SNew (f, Fuzz_rng.pick rng (fam_members f))
        | Some TVec -> SNewVec
        | Some TMap -> SNewMap
        | Some TArr -> SNewArr (2 + Fuzz_rng.int rng 5)
        | None -> fresh_effect k
      in
      (with_step k (Some s'), Replace)
    | Delete ->
      let k = Fuzz_rng.pick rng live in
      (with_step k None, Delete)
    | Insert ->
      let k = Fuzz_rng.pick rng holes in
      let s' =
        match Fuzz_rng.int rng 3 with
        | 0 -> fresh_int k
        | 1 -> fresh_str k
        | _ -> fresh_effect k
      in
      (with_step k (Some s'), Insert)
    | Swap_body ->
      let i = Fuzz_rng.pick rng rendered_classes in
      (with_flag `Get i (not m.alt_get.(i)), Swap_body)
    | Add_aux ->
      let i = Fuzz_rng.pick rng aux_off in
      (with_flag `Aux i true, Add_aux)
    | Remove_aux ->
      let i = Fuzz_rng.pick rng aux_on in
      (with_flag `Aux i false, Remove_aux)
    | Add_override ->
      let i = Fuzz_rng.pick rng ovr_off in
      (with_flag `Ovr i true, Add_override)
    | Remove_override ->
      let i = Fuzz_rng.pick rng ovr_on in
      (with_flag `Ovr i false, Remove_override)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Greedy structure-preserving shrinker: try deleting whole steps (last
   to first — later steps tend to consume earlier ones), then individual
   micro-statements inside branches/loops (keeping the then-branch and
   loop body non-empty so the rendering stays unambiguous), repeating to
   a bounded fixpoint.  [still_failing] must return true iff the
   candidate still exhibits the ORIGINAL failure. *)
let shrink (m : model) ~(still_failing : model -> bool) : model =
  let cur = ref { m with steps = Array.copy m.steps } in
  let try_candidate cand = if still_failing cand then (cur := cand; true) else false in
  let changed = ref true and passes = ref 0 in
  while !changed && !passes < 6 do
    changed := false;
    incr passes;
    for k = Array.length (!cur).steps - 1 downto 0 do
      if (!cur).steps.(k) <> None then begin
        let steps = Array.copy (!cur).steps in
        steps.(k) <- None;
        if try_candidate { !cur with steps } then changed := true
      end
    done;
    (* micro-level shrinks *)
    for k = 0 to Array.length (!cur).steps - 1 do
      let drop_nth xs i = List.filteri (fun j _ -> j <> i) xs in
      match (!cur).steps.(k) with
      | Some (SIf (c, th, el)) ->
        (* drop else micros, then then-micros (keep >= 1) *)
        let th = ref th and el = ref el in
        let attempt mk =
          let steps = Array.copy (!cur).steps in
          steps.(k) <- Some mk;
          try_candidate { !cur with steps }
        in
        let i = ref 0 in
        while !i < List.length !el do
          if attempt (SIf (c, !th, drop_nth !el !i)) then begin
            el := drop_nth !el !i;
            changed := true
          end
          else incr i
        done;
        let i = ref 0 in
        while List.length !th > 1 && !i < List.length !th do
          if attempt (SIf (c, drop_nth !th !i, !el)) then begin
            th := drop_nth !th !i;
            changed := true
          end
          else incr i
        done
      | Some (SLoop (b, bd)) ->
        let bd = ref bd in
        let attempt mk =
          let steps = Array.copy (!cur).steps in
          steps.(k) <- Some mk;
          try_candidate { !cur with steps }
        in
        let i = ref 0 in
        while List.length !bd > 1 && !i < List.length !bd do
          if attempt (SLoop (b, drop_nth !bd !i)) then begin
            bd := drop_nth !bd !i;
            changed := true
          end
          else incr i
        done
      | _ -> ()
    done
  done;
  !cur
