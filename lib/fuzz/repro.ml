(* Self-contained fuzz repros: a committed JSON file that replays one
   oracle violation deterministically, with no dependency on the
   generator (the rendered program text is stored verbatim).

   Replay semantics depend on the recorded fault:
   - [fault = "none"]: the repro captured a REAL pipeline bug.  Replay
     runs the battery and expects ZERO violations — i.e. the committed
     repro is a regression test that stays red until the bug is fixed
     and green forever after.
   - seeded fault: the repro is a harness-sensitivity canary.  Replay
     runs the battery WITH the fault and expects the recorded oracle to
     still fire, and withOUT the fault expects a clean pass — if either
     direction flips, the fuzzer has silently lost its teeth. *)

open Slice_obs

type t = {
  seed : int;          (* the fuzz run's --seed *)
  index : int;         (* program index within the run *)
  derived_seed : int;  (* per-program generator seed *)
  fault : Oracle.fault;
  oracle : string;     (* first violated oracle *)
  detail : string;
  statements : int;    (* rendered statement count of the (shrunk) program *)
  seed_lines : int list;
  edit_kinds : string list;
      (* edit kinds the originating run allowed ([Gen_tj.edit_kind]
         names); [] when the run had edits disabled.  Recorded so the
         exact fuzz invocation is reconstructible from the repro alone;
         absent from pre-edit-kinds repro files and omitted when empty,
         keeping the v1 schema backward and forward compatible. *)
  program : string;    (* full TJ source, self-contained *)
}

let schema = "thinslice.fuzz-repro/v1"

let to_json (r : t) : Json.t =
  Json.Obj
    ([ ("schema", Json.Str schema);
      ("seed", Json.Int r.seed);
      ("index", Json.Int r.index);
      ("derived_seed", Json.Int r.derived_seed);
      ("fault", Json.Str (Oracle.fault_to_string r.fault));
      ("oracle", Json.Str r.oracle);
      ("detail", Json.Str r.detail);
      ("statements", Json.Int r.statements);
       ("seed_lines", Json.List (List.map (fun l -> Json.Int l) r.seed_lines))
     ]
    @ (match r.edit_kinds with
      | [] -> []
      | ks -> [ ("edit_kinds", Json.List (List.map (fun k -> Json.Str k) ks)) ])
    @ [ ("program", Json.Str r.program) ])

let of_json (j : Json.t) : (t, string) result =
  let str k =
    match Json.member k j with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "repro: missing string field %S" k)
  in
  let int k =
    match Json.member k j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "repro: missing int field %S" k)
  in
  let ( let* ) = Result.bind in
  let* sch = str "schema" in
  if sch <> schema then Error (Printf.sprintf "repro: unknown schema %S" sch)
  else
    let* seed = int "seed" in
    let* index = int "index" in
    let* derived_seed = int "derived_seed" in
    let* fault_s = str "fault" in
    let* fault =
      match Oracle.fault_of_string fault_s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "repro: unknown fault %S" fault_s)
    in
    let* oracle = str "oracle" in
    let* detail = str "detail" in
    let* statements = int "statements" in
    let* seed_lines =
      match Json.member "seed_lines" j with
      | Some (Json.List xs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Int n :: rest -> go (n :: acc) rest
          | _ -> Error "repro: seed_lines must be integers"
        in
        go [] xs
      | _ -> Error "repro: missing seed_lines"
    in
    let* edit_kinds =
      match Json.member "edit_kinds" j with
      | None -> Ok []  (* pre-edit-kinds repro: field absent *)
      | Some (Json.List xs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Str s :: rest -> (
            match Gen_tj.edit_kind_of_string s with
            | Some _ -> go (s :: acc) rest
            | None -> Error (Printf.sprintf "repro: unknown edit kind %S" s))
          | _ -> Error "repro: edit_kinds must be strings"
        in
        go [] xs
      | Some _ -> Error "repro: edit_kinds must be a list"
    in
    let* program = str "program" in
    Ok
      { seed; index; derived_seed; fault; oracle; detail; statements;
        seed_lines; edit_kinds; program }

let filename (r : t) : string =
  Printf.sprintf "repro-seed%d-i%d-%s.json" r.seed r.index r.oracle

let save ~(dir : string) (r : t) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename r) in
  let oc = open_out path in
  output_string oc (Json.to_string (to_json r));
  output_char oc '\n';
  close_out oc;
  path

let load (path : string) : (t, string) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | text -> Result.bind (Json.of_string text) of_json

let violations_to_string vs =
  String.concat "; "
    (List.map (fun v -> v.Oracle.oracle ^ ": " ^ v.Oracle.detail) vs)

(* Deterministic re-execution of a committed repro. *)
let replay (r : t) : (unit, string) result =
  let battery fault =
    try
      Ok (Oracle.battery ~fault ~src:r.program ~seed_lines:r.seed_lines ())
    with e -> Error (Printexc.to_string e)
  in
  match r.fault with
  | Oracle.No_fault -> (
    match battery Oracle.No_fault with
    | Error e -> Error ("battery raised: " ^ e)
    | Ok [] -> Ok ()
    | Ok vs ->
      Error
        (Printf.sprintf "recorded pipeline bug still present: %s"
           (violations_to_string vs)))
  | fault -> (
    match battery fault with
    | Error e -> Error ("battery raised under fault: " ^ e)
    | Ok vs when not (List.exists (fun v -> v.Oracle.oracle = r.oracle) vs) ->
      Error
        (Printf.sprintf
           "seeded fault %s no longer trips oracle %s (harness lost \
            sensitivity)"
           (Oracle.fault_to_string fault) r.oracle)
    | Ok _ -> (
      match battery Oracle.No_fault with
      | Error e -> Error ("battery raised without fault: " ^ e)
      | Ok [] -> Ok ()
      | Ok vs ->
        Error
          (Printf.sprintf "clean battery fails on canary program: %s"
             (violations_to_string vs))))
