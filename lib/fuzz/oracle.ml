(* The oracle battery: every cross-checkable property the pipeline
   promises, run against one generated program.

   The battery is the fuzzer's ground truth, so it only states
   properties that are THEOREMS of the design, not empirical
   observations:

   - dynamic thin slice (value dependences only, most recent execution)
     is contained in the static thin slice of the same statement — the
     paper's section 1/7 observation that dynamic thin slices fall out
     of dynamic value dependences, used here in reverse as a soundness
     oracle for the static slicer + SDG + points-to stack;
   - dynamic data slice (value + base-pointer flow) is contained in the
     traditional (full) static slice;
   - the static mode chain is monotone: thin ⊆ thin+alias(k) ⊆
     traditional-data ⊆ traditional-full (edge_policy is pointwise
     monotone in that order);
   - the CSR walk equals [Slicer.Reference] node-for-node, both
     directions, every mode;
   - [Engine.slice_batch_par] at jobs 1/2/4 equals the sequential batch;
   - the bitset solver equals [Andersen.Reference] on the canonical
     pts/call-graph dumps, and the two analyses slice identically;
   - object-sensitive slices (lines) are contained in the
     context-insensitive ones (cloning only refines points-to).

   [fault] deliberately breaks one link — the fuzz driver uses it to
   prove the harness can actually catch and shrink a violation. *)

open Slice_front
open Slice_interp
open Slice_pta
open Slice_core

(* [Dyn_base_as_val] skips the value/base classification when computing
   the dynamic thin slice (base-pointer dependences are followed as if
   they were value dependences), which inflates the dynamic thin slice
   beyond what the static thin slice covers — the seeded bug the
   acceptance criteria require the fuzzer to catch. *)
type fault = No_fault | Dyn_base_as_val

let fault_to_string = function
  | No_fault -> "none"
  | Dyn_base_as_val -> "dyn-base-as-val"

let fault_of_string = function
  | "none" -> Some No_fault
  | "dyn-base-as-val" -> Some Dyn_base_as_val
  | _ -> None

type violation = { oracle : string; detail : string }

module IntSet = Set.Make (Int)

let file = "fuzz.tj"

(* Pretty a small prefix of a list for violation details. *)
let prefix_to_string xs =
  let shown = List.filteri (fun i _ -> i < 8) xs in
  String.concat ", " (List.map string_of_int shown)
  ^ if List.length xs > 8 then ", ..." else ""

let subset_violation ~name ~small ~big ~what =
  let bigset = IntSet.of_list big in
  let missing = List.filter (fun x -> not (IntSet.mem x bigset)) small in
  if missing = [] then None
  else
    Some
      { oracle = name;
        detail =
          Printf.sprintf "%s not contained: missing %s [%s]" what
            (if List.length missing = 1 then "element" else "elements")
            (prefix_to_string missing) }

let sorted xs = List.sort_uniq compare xs

let dump_to_string (d : (string * string list) list) : string =
  String.concat "\n"
    (List.map (fun (k, vs) -> k ^ " -> " ^ String.concat "," vs) d)

(* All modes the slicers promise parity for. *)
let modes =
  [ Slicer.Thin;
    Slicer.Thin_with_aliasing 3;
    Slicer.Traditional_data;
    Slicer.Traditional_full ]

let battery ?(fault = No_fault) ~(src : string) ~(seed_lines : int list) () :
    violation list =
  match Frontend.load ~file src with
  | Error e ->
    [ { oracle = "well_formed"; detail = Frontend.error_to_string e } ]
  | Ok program ->
    let out = ref [] in
    let viol oracle detail = out := { oracle; detail } :: !out in
    let add = function Some v -> out := v :: !out | None -> () in
    (* Main analysis: object-sensitive, frozen CSR, bitset solver — the
       default fast path, i.e. exactly what production slicing uses.
       The SAME [Program.t] also drives the interpreter, so dynamic
       events and SDG nodes agree on statement ids. *)
    let a = Engine.analyze program in
    let sdg = a.Engine.sdg in
    (* stmt id -> SDG nodes (for stmt-level static slices) *)
    let stmt_nodes_tbl = Hashtbl.create 256 in
    for nd = 0 to Sdg.num_nodes sdg - 1 do
      match Sdg.node_stmt sdg nd with
      | Some s -> Hashtbl.add stmt_nodes_tbl s nd
      | None -> ()
    done;
    let stmt_nodes s = Hashtbl.find_all stmt_nodes_tbl s in
    let stmts_of_nodes nodes =
      sorted (List.filter_map (Sdg.node_stmt sdg) nodes)
    in
    (* Seeds: the two trailing prints (each line holds one statement). *)
    let seed_nodes =
      List.concat_map (fun l -> Engine.seeds_at_line a l) seed_lines
    in
    if seed_nodes = [] then
      viol "seeds" "no seed nodes on the trailing print lines";
    (* ---------------- dynamic oracles ---------------- *)
    let trace = Dyntrace.create () in
    let cfg = { Interp.default_config with trace = Some trace } in
    let outcome = Interp.run cfg program in
    let dyn_seed_stmts =
      let from_prints =
        sorted (List.filter_map (Sdg.node_stmt sdg) seed_nodes)
      in
      match outcome.Interp.result with
      | Ok () -> from_prints
      | Error f when f.Interp.f_stmt >= 0 ->
        sorted (f.Interp.f_stmt :: from_prints)
      | Error _ -> from_prints
    in
    let overflowed =
      match outcome.Interp.result with
      | Error { Interp.f_kind = Interp.Trace_limit_exceeded _; _ } -> true
      | _ -> false
    in
    if not overflowed then
      List.iter
        (fun s ->
          match Dyntrace.last_event_of_stmt trace s with
          | None -> ()
          | Some ev ->
            let include_base_for_thin = fault = Dyn_base_as_val in
            let dyn_thin =
              Dyntrace.slice_from_event trace ~include_base:include_base_for_thin
                ev
            in
            let dyn_data =
              Dyntrace.slice_from_event trace ~include_base:true ev
            in
            let seeds = stmt_nodes s in
            if seeds <> [] then begin
              let static_thin =
                stmts_of_nodes (Slicer.slice sdg ~seeds Slicer.Thin)
              in
              let static_trad =
                stmts_of_nodes (Slicer.slice sdg ~seeds Slicer.Traditional_full)
              in
              add
                (subset_violation ~name:"dyn_thin_within_static_thin"
                   ~small:dyn_thin ~big:static_thin
                   ~what:
                     (Printf.sprintf "dynamic thin slice of stmt %d" s));
              add
                (subset_violation ~name:"dyn_data_within_traditional"
                   ~small:dyn_data ~big:static_trad
                   ~what:
                     (Printf.sprintf "dynamic data slice of stmt %d" s))
            end)
        dyn_seed_stmts;
    (* ---------------- static containment chain ---------------- *)
    if seed_nodes <> [] then begin
      let slice_nodes m = sorted (Slicer.slice sdg ~seeds:seed_nodes m) in
      let thin = slice_nodes Slicer.Thin in
      let alias = slice_nodes (Slicer.Thin_with_aliasing 3) in
      let tdata = slice_nodes Slicer.Traditional_data in
      let tfull = slice_nodes Slicer.Traditional_full in
      add
        (subset_violation ~name:"static_mode_chain" ~small:thin ~big:alias
           ~what:"thin within thin+alias3");
      add
        (subset_violation ~name:"static_mode_chain" ~small:alias ~big:tdata
           ~what:"thin+alias3 within traditional-data");
      add
        (subset_violation ~name:"static_mode_chain" ~small:tdata ~big:tfull
           ~what:"traditional-data within traditional-full")
    end;
    (* ---------------- CSR vs Reference slicer ---------------- *)
    if seed_nodes <> [] then
      List.iter
        (fun m ->
          let fast = sorted (Slicer.slice sdg ~seeds:seed_nodes m) in
          let refr = sorted (Slicer.Reference.slice sdg ~seeds:seed_nodes m) in
          if fast <> refr then
            viol "csr_vs_reference"
              (Printf.sprintf "backward %s: CSR %d nodes, reference %d nodes"
                 (Slicer.mode_to_string m) (List.length fast)
                 (List.length refr));
          let ffast = sorted (Slicer.forward_slice sdg ~seeds:seed_nodes m) in
          let frefr =
            sorted (Slicer.Reference.forward_slice sdg ~seeds:seed_nodes m)
          in
          if ffast <> frefr then
            viol "csr_vs_reference"
              (Printf.sprintf "forward %s: CSR %d nodes, reference %d nodes"
                 (Slicer.mode_to_string m) (List.length ffast)
                 (List.length frefr)))
        modes;
    (* ---------------- witness provenance ---------------- *)
    (* The provenance layer promises, per mode: a witness exists for a
       node iff the node is a slice member, and every witness is a REAL
       dependence path — it starts at a seed (kind-less, distance 0),
       ends at the queried node, every hop is an existing SDG edge of
       the recorded kind, no hop uses a kind the mode's edge policy
       skips, and replaying the hops never exhausts the aliasing
       budget. *)
    if seed_nodes <> [] then begin
      let seed_set = IntSet.of_list seed_nodes in
      List.iter
        (fun m ->
          let ms = Slicer.mode_to_string m in
          let prov = Slicer.create_provenance sdg in
          let members = Slicer.slice ~prov sdg ~seeds:seed_nodes m in
          let mem_set = IntSet.of_list members in
          let validate (nd : int) (steps : Slicer.witness_step list) =
            match steps with
            | [] -> viol "witness_path" (Printf.sprintf "%s: empty path" ms)
            | first :: rest ->
              if not (IntSet.mem first.Slicer.wit_node seed_set) then
                viol "witness_path"
                  (Printf.sprintf "%s: path for %d starts at non-seed %d" ms
                     nd first.Slicer.wit_node);
              if first.Slicer.wit_kind <> None then
                viol "witness_path"
                  (Printf.sprintf "%s: seed step of %d carries an edge kind"
                     ms nd);
              if first.Slicer.wit_dist <> 0 then
                viol "witness_path"
                  (Printf.sprintf "%s: seed step of %d has distance %d" ms nd
                     first.Slicer.wit_dist);
              (match List.rev steps with
              | last :: _ when last.Slicer.wit_node <> nd ->
                viol "witness_path"
                  (Printf.sprintf "%s: path for %d ends at %d" ms nd
                     last.Slicer.wit_node)
              | _ -> ());
              let rec go (a : Slicer.witness_step) rb = function
                | [] -> ()
                | (b : Slicer.witness_step) :: rest -> (
                  match b.Slicer.wit_kind with
                  | None ->
                    viol "witness_path"
                      (Printf.sprintf "%s: interior step %d without a kind"
                         ms b.Slicer.wit_node)
                  | Some k ->
                    if
                      not
                        (List.exists
                           (fun (d, kk) -> d = b.Slicer.wit_node && kk = k)
                           (Sdg.deps sdg a.Slicer.wit_node))
                    then
                      viol "witness_path"
                        (Printf.sprintf "%s: no %s edge %d -> %d in the SDG"
                           ms
                           (Sdg.edge_kind_to_string k)
                           a.Slicer.wit_node b.Slicer.wit_node);
                    (match Slicer.edge_policy m k with
                    | `Skip ->
                      viol "witness_path"
                        (Printf.sprintf
                           "%s: path uses %s edge the mode skips" ms
                           (Sdg.edge_kind_to_string k))
                    | `Follow -> go b rb rest
                    | `Costly ->
                      if rb <= 0 then
                        viol "witness_path"
                          (Printf.sprintf
                             "%s: budget exhausted at hop %d -> %d" ms
                             a.Slicer.wit_node b.Slicer.wit_node)
                      else go b (rb - 1) rest))
              in
              go first (Slicer.initial_budget m) rest
          in
          for nd = 0 to Sdg.num_nodes sdg - 1 do
            match Slicer.witness prov nd with
            | None ->
              if IntSet.mem nd mem_set then
                viol "witness_coverage"
                  (Printf.sprintf "%s: member %d has no witness" ms nd)
            | Some steps ->
              if not (IntSet.mem nd mem_set) then
                viol "witness_coverage"
                  (Printf.sprintf "%s: non-member %d has a witness" ms nd)
              else validate nd steps
          done)
        modes
    end;
    (* ---------------- parallel batch parity ---------------- *)
    if seed_nodes <> [] then
      List.iter
        (fun m ->
          let seq = Engine.slice_batch a ~lines:seed_lines m in
          List.iter
            (fun jobs ->
              let par = Engine.slice_batch_par ~jobs a ~lines:seed_lines m in
              if par <> seq then
                viol "parallel_batch_parity"
                  (Printf.sprintf "jobs=%d differs from sequential batch (%s)"
                     jobs (Slicer.mode_to_string m)))
            [ 1; 2; 4 ])
        [ Slicer.Thin; Slicer.Traditional_full ];
    (* ---------------- solver parity ---------------- *)
    let a_ref =
      Engine.analyze ~solver:`Reference (Frontend.load_exn ~file src)
    in
    if
      dump_to_string (Andersen.pts_dump a.Engine.pta)
      <> dump_to_string (Andersen.pts_dump a_ref.Engine.pta)
    then viol "solver_parity" "bitset and reference points-to dumps differ";
    if
      dump_to_string (Andersen.call_graph_dump a.Engine.pta)
      <> dump_to_string (Andersen.call_graph_dump a_ref.Engine.pta)
    then viol "solver_parity" "bitset and reference call-graph dumps differ";
    List.iter
      (fun l ->
        List.iter
          (fun m ->
            let fast = Engine.slice_from_line a ~line:l m in
            let refr = Engine.slice_from_line a_ref ~line:l m in
            if fast <> refr then
              viol "solver_parity"
                (Printf.sprintf "slice lines differ at seed line %d (%s)" l
                   (Slicer.mode_to_string m)))
          [ Slicer.Thin; Slicer.Traditional_full ])
      seed_lines;
    (* ---------------- objsens within ci ---------------- *)
    let a_ci =
      Engine.analyze ~obj_sens:false (Frontend.load_exn ~file src)
    in
    List.iter
      (fun l ->
        List.iter
          (fun m ->
            let obj = Engine.slice_from_line a ~line:l m in
            let ci = Engine.slice_from_line a_ci ~line:l m in
            add
              (subset_violation ~name:"objsens_within_ci" ~small:obj ~big:ci
                 ~what:
                   (Printf.sprintf "object-sensitive %s slice lines at %d"
                      (Slicer.mode_to_string m) l)))
          [ Slicer.Thin; Slicer.Traditional_full ])
      seed_lines;
    List.rev !out

(* ------------------------------------------------------------------ *)
(* The edit battery: incremental == from-scratch                       *)
(* ------------------------------------------------------------------ *)

(* Budget-free modes: provenance BFS ranks in these modes are functions
   of the graph alone, so layered reports must be identical between an
   incrementally updated handle and a fresh load.  [Thin_with_aliasing]
   ranks can depend on budget-consumption order, so reports are not
   compared there — its slice SETS still are, via [modes]. *)
let report_modes =
  [ Slicer.Thin; Slicer.Traditional_data; Slicer.Traditional_full ]

(* Starting from a generated model, apply a chain of random edits;
   after each, [Engine.update] on the carried handle must agree with a
   fresh [Engine.load] of the same source on every observable: slice
   line sets in every mode, the canonical (location-keyed) points-to
   and call-graph dumps, layered report JSON in the budget-free modes,
   and the headline stats.  A byte-identical source must take the Noop
   path.  The chain carries the UPDATED handle forward, so patched
   graphs are themselves patched again — the accumulation case.  After
   the chain, one explicit same-source update must take (and record)
   the Noop path, so every chain contributes noop-tier coverage.

   Besides the violations, returns the update-path tier names the chain
   exercised ("noop", "patched", "resolved-incremental",
   "resolved-fresh", "rebuilt") — the fuzz driver aggregates them
   across programs and fails a run that never reached some tier.
   [kinds] restricts the edit generator to the given kinds (the CLI's
   --edit-kinds). *)
let edit_battery ?(kinds : Gen_tj.edit_kind list option)
    ~(rng : Fuzz_rng.t) ~(model : Gen_tj.model) ~(edits : int) () :
    violation list * string list =
  let out = ref [] in
  let tiers = ref [] in
  let seen_tier (p : Engine.update_path) =
    let s = Engine.update_path_to_string p in
    if not (List.mem s !tiers) then tiers := s :: !tiers
  in
  let viol oracle detail = out := { oracle; detail } :: !out in
  let load_h src =
    try Some (Engine.load [ (file, src) ])
    with Frontend.Error e ->
      viol "edit_well_formed" (Frontend.error_to_string e);
      None
  in
  let r0 = Gen_tj.render model in
  (match load_h r0.Gen_tj.src with
  | None -> ()
  | Some h0 ->
    let h = ref h0 and cur = ref model and prev_src = ref r0.Gen_tj.src in
    (try
       for i = 1 to edits do
         let m', kind = Gen_tj.edit ?kinds ~rng !cur in
         cur := m';
         let r = Gen_tj.render m' in
         let src = r.Gen_tj.src in
         let h', rep = Engine.update !h [ (file, src) ] in
         seen_tier rep.Engine.up_path;
         let ctx =
           Printf.sprintf "edit %d (%s, path=%s)" i
             (Gen_tj.edit_kind_to_string kind)
             (Engine.update_path_to_string rep.Engine.up_path)
         in
         if src = !prev_src && rep.Engine.up_path <> Engine.Noop then
           viol "edit_noop_path" (ctx ^ ": source unchanged but path is not noop");
         (match load_h src with
         | None -> raise Exit
         | Some fresh ->
           let ia = h'.Engine.h_analysis
           and fa = fresh.Engine.h_analysis in
           List.iter
             (fun l ->
               List.iter
                 (fun m ->
                   if
                     Engine.slice_from_line ia ~line:l m
                     <> Engine.slice_from_line fa ~line:l m
                   then
                     viol "edit_slice_parity"
                       (Printf.sprintf "%s: %s slice lines at %d differ" ctx
                          (Slicer.mode_to_string m) l))
                 modes)
             r.Gen_tj.seed_lines;
           if
             dump_to_string (Engine.pts_dump_canonical ia)
             <> dump_to_string (Engine.pts_dump_canonical fa)
           then viol "edit_pts_parity" (ctx ^ ": canonical points-to dumps differ");
           if
             dump_to_string (Engine.call_graph_dump_canonical ia)
             <> dump_to_string (Engine.call_graph_dump_canonical fa)
           then
             viol "edit_pts_parity" (ctx ^ ": canonical call-graph dumps differ");
           List.iter
             (fun l ->
               List.iter
                 (fun m ->
                   let json hh =
                     let q = Engine.Q_report { line = l; mode = m } in
                     Slice_obs.Json.to_string
                       (Engine.query_result_to_json hh q (Engine.run_query hh q))
                   in
                   if json h' <> json fresh then
                     viol "edit_report_parity"
                       (Printf.sprintf "%s: %s report at %d differs" ctx
                          (Slicer.mode_to_string m) l))
                 report_modes)
             r.Gen_tj.seed_lines;
           let s1 = h'.Engine.h_stats and s2 = fresh.Engine.h_stats in
           if
             ( s1.Engine.methods, s1.Engine.ir_statements,
               s1.Engine.sdg_statements )
             <> ( s2.Engine.methods, s2.Engine.ir_statements,
                  s2.Engine.sdg_statements )
           then
             viol "edit_stats_parity"
               (Printf.sprintf
                  "%s: stats differ (methods %d/%d, ir %d/%d, sdg %d/%d)" ctx
                  s1.Engine.methods s2.Engine.methods s1.Engine.ir_statements
                  s2.Engine.ir_statements s1.Engine.sdg_statements
                  s2.Engine.sdg_statements);
           if
             Sdg.num_live_nodes ia.Engine.sdg
             <> Sdg.num_live_nodes fa.Engine.sdg
           then viol "edit_stats_parity" (ctx ^ ": live SDG node counts differ"));
         prev_src := src;
         h := h'
       done;
       (* Explicit same-source update: must be a Noop, whatever tier the
          carried handle last went through. *)
       let h', rep = Engine.update !h [ (file, !prev_src) ] in
       seen_tier rep.Engine.up_path;
       if rep.Engine.up_path <> Engine.Noop then
         viol "edit_noop_path"
           (Printf.sprintf
              "same-source update after the chain took path=%s, not noop"
              (Engine.update_path_to_string rep.Engine.up_path));
       h := h'
     with Exit -> ()));
  (List.rev !out, List.rev !tiers)
