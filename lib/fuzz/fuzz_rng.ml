(* A tiny deterministic PRNG for the fuzzer: splitmix64 over Int64.

   We deliberately do NOT use [Random]: its sequence is not guaranteed
   stable across OCaml releases, and a fuzzer whose repros stop
   reproducing after a compiler upgrade is worse than no fuzzer.
   Splitmix64 is 8 lines of arithmetic, fully specified, and good
   enough for workload generation (we are not doing crypto). *)

type t = { mutable state : int64 }

let make (seed : int) : t = { state = Int64.of_int seed }

(* One splitmix64 step: returns the next raw 64-bit value. *)
let next64 (t : t) : int64 =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform int in [0, bound). bound must be positive.  Modulo bias is
   ~bound/2^62 — irrelevant for program generation.  The logical shift
   keeps only 62 significant bits: OCaml's native int is 63-bit, so
   [Int64.to_int] of a 63-significant-bit value would truncate to a
   NEGATIVE number. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then invalid_arg "Fuzz_rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let bool (t : t) : bool = Int64.logand (next64 t) 1L = 1L

(* Pick uniformly from a non-empty list. *)
let pick (t : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Fuzz_rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(* Weighted pick: [(weight, value)] with positive total weight. *)
let weighted (t : t) (xs : (int * 'a) list) : 'a =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 xs in
  if total <= 0 then invalid_arg "Fuzz_rng.weighted: non-positive total";
  let r = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Fuzz_rng.weighted: unreachable"
    | (w, v) :: rest -> if r < acc + w then v else go (acc + w) rest
  in
  go 0 xs

(* Derive an independent per-program seed from (run seed, index): one
   splitmix step over a mixed state, so neighbouring indices get
   unrelated streams. *)
let derive ~(seed : int) ~(index : int) : int
    =
  let t = { state = Int64.logxor (Int64.of_int seed)
                      (Int64.mul (Int64.of_int (index + 1)) 0x2545F4914F6CDD1DL) }
  in
  Int64.to_int (Int64.shift_right_logical (next64 t) 2)
