(* Abstract objects and analysis contexts for the points-to analysis.

   The heap abstraction is allocation sites, optionally cloned by the
   receiver object of the enclosing method (Milanova-style object
   sensitivity [16], applied selectively to container classes as in the
   paper, section 6.1).  Contexts and abstract objects are mutually
   recursive, so both are interned into integer ids. *)

open Slice_ir

(* What kind of thing an allocation site creates. *)
type alloc_class =
  | Aclass of Types.class_name
  | Aarray of Types.ty                  (* element type *)
  | Astring                             (* string literals / intrinsics *)
  | Aextern of string                   (* synthetic roots, e.g. main's args *)

type ctx =
  | Cnone
  | Crecv of int                        (* receiver abstract-object id *)

type obj_info = {
  oi_id : int;
  oi_site : Instr.stmt_id;              (* negative for synthetic roots *)
  oi_cls : alloc_class;
  oi_ctx : ctx;                         (* heap context of the allocation *)
}

type t = {
  mutable objs : obj_info array;
  mutable num_objs : int;
  intern : (Instr.stmt_id * ctx, int) Hashtbl.t;
}

let create () : t =
  { objs = Array.make 64 { oi_id = -1; oi_site = -1; oi_cls = Astring; oi_ctx = Cnone };
    num_objs = 0;
    intern = Hashtbl.create 64 }

let obj (t : t) (id : int) : obj_info =
  if id < 0 || id >= t.num_objs then invalid_arg "Context.obj";
  t.objs.(id)

let num_objs (t : t) = t.num_objs

(* Intern an abstract object for (site, heap context). *)
let intern_obj (t : t) ~(site : Instr.stmt_id) ~(cls : alloc_class) ~(ctx : ctx) :
    int =
  match Hashtbl.find_opt t.intern (site, ctx) with
  | Some id -> id
  | None ->
    let id = t.num_objs in
    if id = Array.length t.objs then begin
      let bigger = Array.make (2 * id) t.objs.(0) in
      Array.blit t.objs 0 bigger 0 id;
      t.objs <- bigger
    end;
    t.objs.(id) <- { oi_id = id; oi_site = site; oi_cls = cls; oi_ctx = ctx };
    t.num_objs <- id + 1;
    Hashtbl.replace t.intern (site, ctx) id;
    id

(* Re-key allocation sites after an incremental re-lower: a changed
   method's instructions get fresh statement ids, but under a P0 patch
   (identical constraint summary) each old allocation site corresponds
   positionally to exactly one new site.  Rewrites [oi_site] in place and
   rebuilds the (site, ctx) intern so future interning agrees.  Object
   IDS are stable — only the site component of their identity moves. *)
let rekey_sites (t : t) (remap : Instr.stmt_id -> Instr.stmt_id option) : unit =
  let changed = ref false in
  for i = 0 to t.num_objs - 1 do
    let oi = t.objs.(i) in
    match remap oi.oi_site with
    | Some site' when site' <> oi.oi_site ->
      t.objs.(i) <- { oi with oi_site = site' };
      changed := true
    | Some _ | None -> ()
  done;
  if !changed then begin
    Hashtbl.reset t.intern;
    for i = 0 to t.num_objs - 1 do
      let oi = t.objs.(i) in
      if not (Hashtbl.mem t.intern (oi.oi_site, oi.oi_ctx)) then
        Hashtbl.replace t.intern (oi.oi_site, oi.oi_ctx) i
    done
  end

let rec ctx_depth (t : t) (c : ctx) : int =
  match c with
  | Cnone -> 0
  | Crecv o -> 1 + ctx_depth t (obj t o).oi_ctx

(* The class a virtual call dispatches on, for an abstract object. *)
let dispatch_class (oc : alloc_class) : Types.class_name option =
  match oc with
  | Aclass c -> Some c
  | Astring -> Some Types.string_class
  | Aarray _ -> Some Types.object_class    (* arrays only inherit Object *)
  | Aextern _ -> None

let pp_ctx (t : t) ppf (c : ctx) =
  match c with
  | Cnone -> Format.pp_print_string ppf "[]"
  | Crecv o ->
    let oi = obj t o in
    Format.fprintf ppf "[o%d@%d]" o oi.oi_site

let pp_obj (t : t) ppf (id : int) =
  let oi = obj t id in
  let cls =
    match oi.oi_cls with
    | Aclass c -> c
    | Aarray ty -> Types.ty_to_string ty ^ "[]"
    | Astring -> "String"
    | Aextern s -> "<" ^ s ^ ">"
  in
  Format.fprintf ppf "o%d:%s@%d%a" id cls oi.oi_site (pp_ctx t) oi.oi_ctx
