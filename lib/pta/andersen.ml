(* Andersen-style (subset-based) points-to analysis with on-the-fly call
   graph construction, field-sensitive heap, and optional object-sensitive
   cloning of container-class methods and their allocations — the analysis
   configuration described in the paper's section 6.1.

   Solver structure: a standard difference-propagation worklist over an
   interned node universe.  Nodes are context-qualified local variables,
   static fields, abstract-object fields, and per-method-context return
   values.  Complex constraints (field loads/stores, virtual dispatch)
   are attached to base-pointer nodes and processed as their points-to
   sets grow. *)

open Slice_ir

module ObjSet = Set.Make (Int)

type opts = {
  obj_sens_containers : bool;
  max_ctx_depth : int;
}

(* Telemetry: plain int-ref bumps (see Slice_obs); interned once here. *)
let c_worklist_iterations = Slice_obs.counter "pta.worklist_iterations"
let c_constraints = Slice_obs.counter "pta.constraints_processed"
let c_diff_prop_hits = Slice_obs.counter "pta.diff_prop_hits"
let c_edges = Slice_obs.counter "pta.points_to_edges"
let c_context_clones = Slice_obs.counter "pta.context_clones"
let c_pts_objs = Slice_obs.counter "pta.pts_objects_propagated"

let default_opts = { obj_sens_containers = true; max_ctx_depth = 3 }

let no_obj_sens_opts = { obj_sens_containers = false; max_ctx_depth = 3 }

(* The array-contents pseudo-field. *)
let elem_field = "$elem"

type node_desc =
  | Nvar of int * Instr.var             (* method-context id, variable *)
  | Nstatic of Types.class_name * Types.field_name
  | Nfield of int * string              (* abstract object id, field *)
  | Nret of int                         (* return value of a method context *)

(* A call that must be (re-)resolved as receiver objects arrive. *)
type dispatch = {
  d_caller : int;                       (* caller method-context id *)
  d_stmt : Instr.stmt_id;
  d_kind : Instr.call_kind;
  d_args : Instr.var list;
  d_lhs : Instr.var option;
}

type mctx_info = { mi_mq : Instr.method_qname; mi_ctx : Context.ctx }

type t = {
  p : Program.t;
  opts : opts;
  ctxs : Context.t;
  (* method contexts *)
  mutable mctxs : mctx_info array;
  mutable num_mctxs : int;
  mctx_intern : (string * Context.ctx, int) Hashtbl.t;
  mutable processed : bool array;       (* per mctx: constraints generated *)
  (* nodes *)
  mutable node_descs : node_desc array;
  mutable num_nodes : int;
  node_intern : (node_desc, int) Hashtbl.t;
  mutable pts : ObjSet.t array;
  mutable succs : (int * Types.ty option) list array;   (* copy edges w/ cast filter *)
  mutable loads : (string * int) list array;            (* field, dst *)
  mutable stores : (string * int) list array;           (* field, src *)
  mutable dispatches : dispatch list array;
  edge_seen : (int * int, unit) Hashtbl.t;
  (* call graph: (caller mctx, stmt) -> callee mctxs; and intrinsic targets *)
  call_edges : (int * Instr.stmt_id, int list ref) Hashtbl.t;
  intrinsic_edges : (int * Instr.stmt_id, Instr.method_qname list ref) Hashtbl.t;
  (* dedup for wiring a call site to a callee context *)
  wired : (int * Instr.stmt_id * int, unit) Hashtbl.t;
  mutable work : (int * ObjSet.t) list;  (* worklist: node, delta *)
}

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let mctx_key (mq : Instr.method_qname) (c : Context.ctx) =
  (Instr.method_qname_to_string mq, c)

let intern_mctx (t : t) (mq : Instr.method_qname) (c : Context.ctx) : int =
  let key = mctx_key mq c in
  match Hashtbl.find_opt t.mctx_intern key with
  | Some id -> id
  | None ->
    let id = t.num_mctxs in
    if id = Array.length t.mctxs then begin
      let bigger = Array.make (2 * id) t.mctxs.(0) in
      Array.blit t.mctxs 0 bigger 0 id;
      t.mctxs <- bigger;
      let bigger_p = Array.make (2 * id) false in
      Array.blit t.processed 0 bigger_p 0 id;
      t.processed <- bigger_p
    end;
    t.mctxs.(id) <- { mi_mq = mq; mi_ctx = c };
    t.num_mctxs <- id + 1;
    Hashtbl.replace t.mctx_intern key id;
    if c <> Context.Cnone then Slice_obs.bump c_context_clones;
    id

let grow_nodes (t : t) =
  let n = Array.length t.node_descs in
  let bigger_d = Array.make (2 * n) t.node_descs.(0) in
  Array.blit t.node_descs 0 bigger_d 0 n;
  t.node_descs <- bigger_d;
  let bigger_pts = Array.make (2 * n) ObjSet.empty in
  Array.blit t.pts 0 bigger_pts 0 n;
  t.pts <- bigger_pts;
  let grow a default =
    let b = Array.make (2 * n) default in
    Array.blit a 0 b 0 n;
    b
  in
  t.succs <- grow t.succs [];
  t.loads <- grow t.loads [];
  t.stores <- grow t.stores [];
  t.dispatches <- grow t.dispatches []

let intern_node (t : t) (d : node_desc) : int =
  match Hashtbl.find_opt t.node_intern d with
  | Some id -> id
  | None ->
    let id = t.num_nodes in
    if id = Array.length t.node_descs then grow_nodes t;
    t.node_descs.(id) <- d;
    t.num_nodes <- id + 1;
    Hashtbl.replace t.node_intern d id;
    id

(* ------------------------------------------------------------------ *)
(* Core propagation                                                    *)
(* ------------------------------------------------------------------ *)

(* Does object [o] pass a cast filter to type [ty]? *)
let obj_passes (t : t) (o : int) (ty : Types.ty) : bool =
  let oi = Context.obj t.ctxs o in
  match (oi.Context.oi_cls, ty) with
  | _, Types.Tclass c when String.equal c Types.object_class -> true
  | Context.Aclass c, Types.Tclass target ->
    Program.is_subclass t.p ~sub:c ~sup:target
  | Context.Astring, Types.Tclass target ->
    Program.is_subclass t.p ~sub:Types.string_class ~sup:target
  | Context.Aarray elem, Types.Tarray telem -> (
    match (elem, telem) with
    | Types.Tclass sub, Types.Tclass sup -> Program.is_subclass t.p ~sub ~sup
    | a, b -> Types.equal_ty a b)
  | Context.Aextern _, _ -> true
  | (Context.Aclass _ | Context.Astring), Types.Tarray _ -> false
  | Context.Aarray _, Types.Tclass _ -> false
  | _, (Types.Tint | Types.Tbool | Types.Tvoid | Types.Tnull) -> false

let filter_delta (t : t) (filter : Types.ty option) (delta : ObjSet.t) : ObjSet.t =
  match filter with
  | None -> delta
  | Some ty -> ObjSet.filter (fun o -> obj_passes t o ty) delta

let add_pts (t : t) (n : int) (objs : ObjSet.t) : unit =
  let fresh = ObjSet.diff objs t.pts.(n) in
  if ObjSet.is_empty fresh then
    (* difference propagation pruned the whole delta: no re-enqueue *)
    Slice_obs.bump c_diff_prop_hits
  else begin
    Slice_obs.add c_pts_objs (ObjSet.cardinal fresh);
    t.pts.(n) <- ObjSet.union t.pts.(n) fresh;
    t.work <- (n, fresh) :: t.work
  end

let add_edge (t : t) ?(filter : Types.ty option) (src : int) (dst : int) : unit =
  if src <> dst && not (Hashtbl.mem t.edge_seen (src, dst)) then begin
    Hashtbl.replace t.edge_seen (src, dst) ();
    Slice_obs.bump c_edges;
    t.succs.(src) <- (dst, filter) :: t.succs.(src);
    let d = filter_delta t filter t.pts.(src) in
    if not (ObjSet.is_empty d) then add_pts t dst d
  end

let add_load (t : t) ~(base : int) ~(field : string) ~(dst : int) : unit =
  t.loads.(base) <- (field, dst) :: t.loads.(base);
  ObjSet.iter
    (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
    t.pts.(base)

let add_store (t : t) ~(base : int) ~(field : string) ~(src : int) : unit =
  t.stores.(base) <- (field, src) :: t.stores.(base);
  ObjSet.iter
    (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
    t.pts.(base)

(* ------------------------------------------------------------------ *)
(* Method constraint generation                                        *)
(* ------------------------------------------------------------------ *)

let is_ref_var (m : Instr.meth) (v : Instr.var) : bool =
  Types.is_reference (Instr.var_info m v).Instr.vi_ty

(* Heap context of allocations performed in method-context [mc]. *)
let heap_ctx (t : t) (mc : int) : Context.ctx = t.mctxs.(mc).mi_ctx

let alloc (t : t) (mc : int) ~(site : Instr.stmt_id) ~(cls : Context.alloc_class) :
    int =
  Context.intern_obj t.ctxs ~site ~cls ~ctx:(heap_ctx t mc)

(* Is this class (or a superclass) a container? *)
let is_container_class (t : t) (c : Types.class_name) : bool =
  List.exists
    (fun sup ->
      match Program.find_class t.p sup with
      | Some ci -> ci.Program.c_is_container
      | None -> false)
    (c :: Program.superclasses t.p c)

(* Choose the callee analysis context for a call dispatched on object [o]. *)
let callee_ctx (t : t) ~(recv_obj : int) : Context.ctx =
  if not t.opts.obj_sens_containers then Context.Cnone
  else begin
    let oi = Context.obj t.ctxs recv_obj in
    match Context.dispatch_class oi.Context.oi_cls with
    | Some c when is_container_class t c ->
      let cand = Context.Crecv recv_obj in
      if Context.ctx_depth t.ctxs cand > t.opts.max_ctx_depth then Context.Cnone
      else cand
    | Some _ | None -> Context.Cnone
  end

let record_call_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(callee : int) : unit =
  let key = (caller, stmt) in
  let cell =
    match Hashtbl.find_opt t.call_edges key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.call_edges key r;
      r
  in
  if not (List.mem callee !cell) then cell := callee :: !cell

let record_intrinsic_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(callee : Instr.method_qname) : unit =
  let key = (caller, stmt) in
  let cell =
    match Hashtbl.find_opt t.intrinsic_edges key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.intrinsic_edges key r;
      r
  in
  if not (List.mem callee !cell) then cell := callee :: !cell

let rec make_reachable (t : t) (mc : int) : unit =
  if not t.processed.(mc) then begin
    t.processed.(mc) <- true;
    let info = t.mctxs.(mc) in
    let m = Program.find_method_exn t.p info.mi_mq in
    match m.Instr.m_body with
    | Instr.Intrinsic _ | Instr.Abstract -> ()
    | Instr.Body _ ->
      let var v = intern_node t (Nvar (mc, v)) in
      Instr.iter_instrs m (fun _ i ->
          let site = i.Instr.i_id in
          match i.Instr.i_kind with
          | Instr.Const (x, Types.Cstr _) when is_ref_var m x ->
            add_pts t (var x)
              (ObjSet.singleton (alloc t mc ~site ~cls:Context.Astring))
          | Instr.Const _ -> ()
          | Instr.New (x, c) ->
            add_pts t (var x)
              (ObjSet.singleton (alloc t mc ~site ~cls:(Context.Aclass c)))
          | Instr.New_array (x, elem, _) ->
            add_pts t (var x)
              (ObjSet.singleton (alloc t mc ~site ~cls:(Context.Aarray elem)))
          | Instr.Move (x, y) when is_ref_var m x && is_ref_var m y ->
            add_edge t (var y) (var x)
          | Instr.Move _ -> ()
          | Instr.Cast (x, ty, y) when is_ref_var m x && is_ref_var m y ->
            add_edge t ~filter:ty (var y) (var x)
          | Instr.Cast _ -> ()
          | Instr.Phi (x, ins) when is_ref_var m x ->
            List.iter (fun (_, y) -> add_edge t (var y) (var x)) ins
          | Instr.Phi _ -> ()
          | Instr.Load (x, y, f) when is_ref_var m x ->
            add_load t ~base:(var y) ~field:f ~dst:(var x)
          | Instr.Load _ -> ()
          | Instr.Store (x, f, y) when is_ref_var m y ->
            add_store t ~base:(var x) ~field:f ~src:(var y)
          | Instr.Store _ -> ()
          | Instr.Array_load (x, y, _) when is_ref_var m x ->
            add_load t ~base:(var y) ~field:elem_field ~dst:(var x)
          | Instr.Array_load _ -> ()
          | Instr.Array_store (a, _, x) when is_ref_var m x ->
            add_store t ~base:(var a) ~field:elem_field ~src:(var x)
          | Instr.Array_store _ -> ()
          | Instr.Static_load (x, c, f) when is_ref_var m x ->
            add_edge t (intern_node t (Nstatic (c, f))) (var x)
          | Instr.Static_load _ -> ()
          | Instr.Static_store (c, f, y) when is_ref_var m y ->
            add_edge t (var y) (intern_node t (Nstatic (c, f)))
          | Instr.Static_store _ -> ()
          | Instr.Call { lhs; kind; args } -> process_call t mc i lhs kind args
          | Instr.Binop _ | Instr.Unop _ | Instr.Instance_of _
          | Instr.Array_length _ | Instr.Nop -> ());
      Instr.iter_terms m (fun _ term ->
          match term.Instr.t_kind with
          | Instr.Return (Some v) when is_ref_var m v ->
            add_edge t (var v) (intern_node t (Nret mc))
          | Instr.Return _ | Instr.Goto _ | Instr.If _ | Instr.Throw _ -> ())
  end

and process_call (t : t) (mc : int) (i : Instr.instr) (lhs : Instr.var option)
    (kind : Instr.call_kind) (args : Instr.var list) : unit =
  let info = t.mctxs.(mc) in
  let m = Program.find_method_exn t.p info.mi_mq in
  match kind with
  | Instr.Static mq ->
    let callee = Program.find_method_exn t.p mq in
    wire_call t ~caller:mc ~stmt:i.Instr.i_id ~caller_meth:m ~callee
      ~callee_ctx:Context.Cnone ~recv_obj:None ~lhs ~args
  | Instr.Special _ | Instr.Virtual _ -> (
    (* dispatch (or context selection, for Special) driven by the receiver *)
    match args with
    | recv :: _ when is_ref_var m recv ->
      let d =
        { d_caller = mc; d_stmt = i.Instr.i_id; d_kind = kind; d_args = args; d_lhs = lhs }
      in
      let rnode = intern_node t (Nvar (mc, recv)) in
      t.dispatches.(rnode) <- d :: t.dispatches.(rnode);
      ObjSet.iter (fun o -> process_dispatch t d o) t.pts.(rnode)
    | _ -> ())

and process_dispatch (t : t) (d : dispatch) (recv_obj : int) : unit =
  let oi = Context.obj t.ctxs recv_obj in
  match Context.dispatch_class oi.Context.oi_cls with
  | None -> ()
  | Some cls -> (
    let target =
      match d.d_kind with
      | Instr.Virtual name -> Program.dispatch t.p cls name
      | Instr.Special mq -> Program.find_method t.p mq
      | Instr.Static _ -> None
    in
    match target with
    | None -> ()
    | Some callee ->
      let caller_meth = Program.find_method_exn t.p t.mctxs.(d.d_caller).mi_mq in
      let cctx = callee_ctx t ~recv_obj in
      wire_call t ~caller:d.d_caller ~stmt:d.d_stmt ~caller_meth ~callee
        ~callee_ctx:cctx ~recv_obj:(Some recv_obj) ~lhs:d.d_lhs ~args:d.d_args)

and wire_call (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(caller_meth : Instr.meth) ~(callee : Instr.meth)
    ~(callee_ctx : Context.ctx) ~(recv_obj : int option)
    ~(lhs : Instr.var option) ~(args : Instr.var list) : unit =
  match callee.Instr.m_body with
  | Instr.Intrinsic intr ->
    record_intrinsic_edge t ~caller ~stmt ~callee:callee.Instr.m_qname;
    (match (Instr.intrinsic_allocates intr, lhs) with
    | Some _cls, Some x when is_ref_var caller_meth x ->
      let o = alloc t caller ~site:stmt ~cls:Context.Astring in
      add_pts t (intern_node t (Nvar (caller, x))) (ObjSet.singleton o)
    | _ -> ())
  | Instr.Abstract -> ()
  | Instr.Body _ ->
    let cmc = intern_mctx t callee.Instr.m_qname callee_ctx in
    record_call_edge t ~caller ~stmt ~callee:cmc;
    make_reachable t cmc;
    (* Receiver: flows as a single object, keeping obj-sensitivity sharp. *)
    (match (recv_obj, callee.Instr.m_params) with
    | Some o, this_param :: _ ->
      add_pts t (intern_node t (Nvar (cmc, this_param))) (ObjSet.singleton o)
    | _ -> ());
    let key = (caller, stmt, cmc) in
    if not (Hashtbl.mem t.wired key) then begin
      Hashtbl.replace t.wired key ();
      (* Non-receiver arguments and the return value. *)
      let params = callee.Instr.m_params in
      let skip_recv = recv_obj <> None in
      let rec wire_args ps as_ first =
        match (ps, as_) with
        | [], _ | _, [] -> ()
        | p :: ps', a :: as_' ->
          if not (first && skip_recv) then begin
            if is_ref_var callee p && is_ref_var caller_meth a then
              add_edge t
                (intern_node t (Nvar (caller, a)))
                (intern_node t (Nvar (cmc, p)))
          end;
          wire_args ps' as_' false
      in
      wire_args params args true;
      match lhs with
      | Some x
        when is_ref_var caller_meth x
             && Types.is_reference callee.Instr.m_ret_ty ->
        add_edge t (intern_node t (Nret cmc)) (intern_node t (Nvar (caller, x)))
      | _ -> ()
    end

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

let solve (t : t) : unit =
  let rec drain () =
    match t.work with
    | [] -> ()
    | (n, delta) :: rest ->
      t.work <- rest;
      Slice_obs.bump c_worklist_iterations;
      Slice_obs.add c_constraints
        (List.length t.succs.(n) + List.length t.loads.(n)
        + List.length t.stores.(n)
        + List.length t.dispatches.(n));
      List.iter
        (fun (dst, filter) ->
          let d = filter_delta t filter delta in
          if not (ObjSet.is_empty d) then add_pts t dst d)
        t.succs.(n);
      List.iter
        (fun (field, dst) ->
          ObjSet.iter
            (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
            delta)
        t.loads.(n);
      List.iter
        (fun (field, src) ->
          ObjSet.iter
            (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
            delta)
        t.stores.(n);
      List.iter
        (fun d -> ObjSet.iter (fun o -> process_dispatch t d o) delta)
        t.dispatches.(n);
      drain ()
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Entry points and result API                                         *)
(* ------------------------------------------------------------------ *)

type result = t

let analyze_uninstrumented ~opts (p : Program.t) : result =
  let t =
    { p;
      opts;
      ctxs = Context.create ();
      mctxs =
        Array.make 64 { mi_mq = { Instr.mq_class = ""; mq_name = "" }; mi_ctx = Context.Cnone };
      num_mctxs = 0;
      mctx_intern = Hashtbl.create 64;
      processed = Array.make 64 false;
      node_descs = Array.make 256 (Nstatic ("", ""));
      num_nodes = 0;
      node_intern = Hashtbl.create 256;
      pts = Array.make 256 ObjSet.empty;
      succs = Array.make 256 [];
      loads = Array.make 256 [];
      stores = Array.make 256 [];
      dispatches = Array.make 256 [];
      edge_seen = Hashtbl.create 1024;
      call_edges = Hashtbl.create 256;
      intrinsic_edges = Hashtbl.create 64;
      wired = Hashtbl.create 256;
      work = [] }
  in
  let entry_mq = Program.entry_method p in
  (match Program.find_method p entry_mq with
  | None -> ()
  | Some main ->
    let emc = intern_mctx t entry_mq Context.Cnone in
    make_reachable t emc;
    (* main's String[] argument: synthetic array of synthetic strings *)
    (match main.Instr.m_params with
    | [ pv ] when is_ref_var main pv ->
      let arr =
        Context.intern_obj t.ctxs ~site:(-1)
          ~cls:(Context.Aarray (Types.Tclass Types.string_class))
          ~ctx:Context.Cnone
      in
      let str =
        Context.intern_obj t.ctxs ~site:(-2) ~cls:Context.Astring
          ~ctx:Context.Cnone
      in
      add_pts t (intern_node t (Nvar (emc, pv))) (ObjSet.singleton arr);
      add_pts t (intern_node t (Nfield (arr, elem_field))) (ObjSet.singleton str)
    | _ -> ()));
  Slice_obs.span "pta.solve" (fun () -> solve t);
  t

let analyze ?(opts = default_opts) (p : Program.t) : result =
  Slice_obs.span "pta" (fun () -> analyze_uninstrumented ~opts p)

(* --- queries ------------------------------------------------------- *)

let contexts (t : result) : Context.t = t.ctxs

let method_contexts (t : result) : (int * Instr.method_qname * Context.ctx) list =
  let out = ref [] in
  for i = t.num_mctxs - 1 downto 0 do
    if t.processed.(i) then
      out := (i, t.mctxs.(i).mi_mq, t.mctxs.(i).mi_ctx) :: !out
  done;
  !out

let mctx_info (t : result) (mc : int) : Instr.method_qname * Context.ctx =
  (t.mctxs.(mc).mi_mq, t.mctxs.(mc).mi_ctx)

let mctxs_of_method (t : result) (mq : Instr.method_qname) : int list =
  List.filter_map
    (fun (i, mq', _) -> if Instr.equal_method_qname mq mq' then Some i else None)
    (method_contexts t)

let reachable_methods (t : result) : Instr.method_qname list =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, mq, _) ->
      Hashtbl.replace seen (Instr.method_qname_to_string mq) mq)
    (method_contexts t);
  List.sort Instr.compare_method_qname
    (Hashtbl.fold (fun _ mq acc -> mq :: acc) seen [])

let pts_of_node (t : result) (d : node_desc) : ObjSet.t =
  match Hashtbl.find_opt t.node_intern d with
  | Some id -> t.pts.(id)
  | None -> ObjSet.empty

let pts_of_var (t : result) ~(mctx : int) (v : Instr.var) : ObjSet.t =
  pts_of_node t (Nvar (mctx, v))

(* Context-insensitive projection: union over all contexts of the method. *)
let pts_of_var_ci (t : result) (mq : Instr.method_qname) (v : Instr.var) :
    ObjSet.t =
  List.fold_left
    (fun acc mc -> ObjSet.union acc (pts_of_var t ~mctx:mc v))
    ObjSet.empty (mctxs_of_method t mq)

let pts_of_field (t : result) ~(obj : int) ~(field : string) : ObjSet.t =
  pts_of_node t (Nfield (obj, field))

let pts_of_static (t : result) (c : Types.class_name) (f : Types.field_name) :
    ObjSet.t =
  pts_of_node t (Nstatic (c, f))

let call_targets (t : result) ~(mctx : int) ~(stmt : Instr.stmt_id) : int list =
  match Hashtbl.find_opt t.call_edges (mctx, stmt) with
  | Some r -> !r
  | None -> []

let intrinsic_targets (t : result) ~(mctx : int) ~(stmt : Instr.stmt_id) :
    Instr.method_qname list =
  match Hashtbl.find_opt t.intrinsic_edges (mctx, stmt) with
  | Some r -> !r
  | None -> []

(* Call targets, context-insensitively: method names only. *)
let call_targets_ci (t : result) (mq : Instr.method_qname)
    ~(stmt : Instr.stmt_id) : Instr.method_qname list =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun mc ->
      List.iter
        (fun cmc ->
          let mq', _ = mctx_info t cmc in
          Hashtbl.replace seen (Instr.method_qname_to_string mq') mq')
        (call_targets t ~mctx:mc ~stmt))
    (mctxs_of_method t mq);
  Hashtbl.fold (fun _ m acc -> m :: acc) seen []

(* Intrinsic targets, context-insensitively. *)
let intrinsic_targets_ci (t : result) (mq : Instr.method_qname)
    ~(stmt : Instr.stmt_id) : Instr.method_qname list =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun mc ->
      List.iter
        (fun imq -> Hashtbl.replace seen (Instr.method_qname_to_string imq) imq)
        (intrinsic_targets t ~mctx:mc ~stmt))
    (mctxs_of_method t mq);
  Hashtbl.fold (fun _ m acc -> m :: acc) seen []

let num_call_graph_nodes (t : result) : int =
  List.length (method_contexts t)

let num_objects (t : result) : int = Context.num_objs t.ctxs

(* Verifiable casts: can pointer analysis prove the cast never fails?  The
   tough-cast experiment (section 6.3) slices from casts where this check
   fails. *)
let cast_verified (t : result) (mq : Instr.method_qname) (cast : Instr.instr) :
    bool =
  match cast.Instr.i_kind with
  | Instr.Cast (_, ty, y) ->
    let pts = pts_of_var_ci t mq y in
    ObjSet.for_all (fun o -> obj_passes t o ty) pts
  | _ -> invalid_arg "Andersen.cast_verified: not a cast"
