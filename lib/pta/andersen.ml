(* Andersen-style (subset-based) points-to analysis with on-the-fly call
   graph construction, field-sensitive heap, and optional object-sensitive
   cloning of container-class methods and their allocations — the analysis
   configuration described in the paper's section 6.1.

   Two solvers share one constraint-generation logic:

   - The main solver (this module's toplevel) keeps points-to sets and
     propagation deltas in growable dense bitsets ([Slice_util.Bits]),
     accumulates per-node deltas so a node sits on the worklist at most
     once (entry-unique FIFO int ring, the same shape as [Slicer]'s),
     and collapses copy cycles online: a union-find over constraint
     nodes with lazy cycle detection triggered on redundant-propagation
     hits, so every node of an unfiltered copy cycle shares one pts-set.
     All queries go through [find].

   - [Reference] is the original list/tree solver ([Set.Make(Int)]
     points-to sets, LIFO [(node, delta)] worklist), kept verbatim as a
     telemetry-free oracle — the same role [Slicer.Reference] plays for
     the CSR slicer.  [of_reference] converts its result into the main
     representation so the full pipeline (SDG construction, slicing) can
     run against it for parity checks and A/B benchmarks. *)

open Slice_ir
module Bits = Slice_util.Bits

module ObjSet = Set.Make (Int)

type opts = {
  obj_sens_containers : bool;
  max_ctx_depth : int;
}

(* Telemetry: plain int-ref bumps (see Slice_obs); interned once here.
   Only the main solver bumps these — [Reference] is telemetry-free. *)
let c_worklist_iterations = Slice_obs.counter "pta.worklist_iterations"
let c_constraints = Slice_obs.counter "pta.constraints_processed"
let c_diff_prop_hits = Slice_obs.counter "pta.diff_prop_hits"
let c_edges = Slice_obs.counter "pta.points_to_edges"
let c_context_clones = Slice_obs.counter "pta.context_clones"
let c_pts_objs = Slice_obs.counter "pta.pts_objects_propagated"
let c_cycles_collapsed = Slice_obs.counter "pta.cycles_collapsed"
let c_lcd_runs = Slice_obs.counter "pta.lcd_runs"

let default_opts = { obj_sens_containers = true; max_ctx_depth = 3 }

let no_obj_sens_opts = { obj_sens_containers = false; max_ctx_depth = 3 }

(* The array-contents pseudo-field. *)
let elem_field = "$elem"

type node_desc =
  | Nvar of int * Instr.var             (* method-context id, variable *)
  | Nstatic of Types.class_name * Types.field_name
  | Nfield of int * string              (* abstract object id, field *)
  | Nret of int                         (* return value of a method context *)

(* A call that must be (re-)resolved as receiver objects arrive. *)
type dispatch = {
  d_caller : int;                       (* caller method-context id *)
  d_stmt : Instr.stmt_id;
  d_kind : Instr.call_kind;
  d_args : Instr.var list;
  d_lhs : Instr.var option;
}

type mctx_info = { mi_mq : Instr.method_qname; mi_ctx : Context.ctx }

(* One structural constraint a method context contributed, recorded as
   constraint generation runs so [resolve_delta] can replay a surviving
   method's constraints without re-walking its body.  Node and object
   ids are the interned (pre-[find]) ids, which are stable across cycle
   collapses.  Only the two structural entry points log
   ([make_reachable] and [process_call]); solve-derived work — dispatch
   wiring, load/store-materialised field edges — is re-derived from
   these during replay and must never be recorded. *)
type pv_op =
  | Pseed of int * int                     (* node, object *)
  | Pedge of int * int * Types.ty option   (* src, dst, cast filter *)
  | Pload of int * string * int            (* base, field, dst *)
  | Pstore of int * string * int           (* base, field, src *)
  | Pcall of dispatch                      (* any call site, incl. static *)

(* ------------------------------------------------------------------ *)
(* Canonical keys for cross-solver parity                              *)
(* ------------------------------------------------------------------ *)

(* Interning ORDER differs between the two solvers (FIFO vs LIFO
   worklists reach allocation sites in different orders), so raw object
   / method-context / node ids are not comparable.  Dumps therefore key
   everything by a canonical string derived from the underlying
   (site, class, context) / (method, context) identity, which is
   order-independent. *)

(* [site] renders an allocation/call site id.  Dumps comparing two runs
   of the SAME program number statements identically and use
   [string_of_int]; dumps comparing an incrementally patched analysis
   against a fresh one must key sites by source LOCATION instead,
   because a re-lowered method's statements carry fresh ids (see
   [pts_dump_loc]). *)
let rec obj_key_site ~(site : int -> string) (ctxs : Context.t) (o : int) :
    string =
  let oi = Context.obj ctxs o in
  let cls =
    match oi.Context.oi_cls with
    | Context.Aclass c -> "C" ^ c
    | Context.Aarray ty -> "A" ^ Types.ty_to_string ty
    | Context.Astring -> "S"
    | Context.Aextern s -> "X" ^ s
  in
  site oi.Context.oi_site ^ ":" ^ cls ^ ctx_key_site ~site ctxs oi.Context.oi_ctx

and ctx_key_site ~site (ctxs : Context.t) (c : Context.ctx) : string =
  match c with
  | Context.Cnone -> ""
  | Context.Crecv o -> "<" ^ obj_key_site ~site ctxs o ^ ">"


let mctx_key_str_site ~site ctxs mq c =
  Instr.method_qname_to_string mq ^ "@" ^ ctx_key_site ~site ctxs c

let mctx_key_str ctxs mq c = mctx_key_str_site ~site:string_of_int ctxs mq c

let node_key_site ~site ctxs
    (mctx_of : int -> Instr.method_qname * Context.ctx) (d : node_desc) :
    string =
  match d with
  | Nvar (mc, v) ->
    let mq, c = mctx_of mc in
    "V:" ^ mctx_key_str_site ~site ctxs mq c ^ ":" ^ string_of_int v
  | Nstatic (c, f) -> "G:" ^ c ^ "." ^ f
  | Nfield (o, f) -> "F:" ^ obj_key_site ~site ctxs o ^ "." ^ f
  | Nret mc ->
    let mq, c = mctx_of mc in
    "R:" ^ mctx_key_str_site ~site ctxs mq c

let build_pts_dump_site ~site ~ctxs ~mctx_of ~num_nodes ~desc_of ~objs_of :
    (string * string list) list =
  let entries = ref [] in
  for i = 0 to num_nodes - 1 do
    let objs = objs_of i in
    if objs <> [] then
      entries :=
        ( node_key_site ~site ctxs mctx_of (desc_of i),
          List.sort compare (List.map (obj_key_site ~site ctxs) objs) )
        :: !entries
  done;
  List.sort compare !entries

let build_pts_dump ~ctxs ~mctx_of ~num_nodes ~desc_of ~objs_of =
  build_pts_dump_site ~site:string_of_int ~ctxs ~mctx_of ~num_nodes ~desc_of
    ~objs_of

(* ------------------------------------------------------------------ *)
(* Reference solver: the original list/tree implementation, verbatim    *)
(* (telemetry stripped)                                                 *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  type t = {
    p : Program.t;
    opts : opts;
    ctxs : Context.t;
    (* method contexts *)
    mutable mctxs : mctx_info array;
    mutable num_mctxs : int;
    mctx_intern : (string * Context.ctx, int) Hashtbl.t;
    mutable processed : bool array;     (* per mctx: constraints generated *)
    (* nodes *)
    mutable node_descs : node_desc array;
    mutable num_nodes : int;
    node_intern : (node_desc, int) Hashtbl.t;
    mutable pts : ObjSet.t array;
    mutable succs : (int * Types.ty option) list array; (* copy edges w/ cast filter *)
    mutable loads : (string * int) list array;          (* field, dst *)
    mutable stores : (string * int) list array;         (* field, src *)
    mutable dispatches : dispatch list array;
    edge_seen : (int * int, unit) Hashtbl.t;
    (* call graph: (caller mctx, stmt) -> callee mctxs; and intrinsic targets *)
    call_edges : (int * Instr.stmt_id, int list ref) Hashtbl.t;
    intrinsic_edges : (int * Instr.stmt_id, Instr.method_qname list ref) Hashtbl.t;
    (* dedup for wiring a call site to a callee context *)
    wired : (int * Instr.stmt_id * int, unit) Hashtbl.t;
    mutable work : (int * ObjSet.t) list; (* worklist: node, delta *)
  }

  type result = t

  (* --- interning --- *)

  let mctx_key (mq : Instr.method_qname) (c : Context.ctx) =
    (Instr.method_qname_to_string mq, c)

  let intern_mctx (t : t) (mq : Instr.method_qname) (c : Context.ctx) : int =
    let key = mctx_key mq c in
    match Hashtbl.find_opt t.mctx_intern key with
    | Some id -> id
    | None ->
      let id = t.num_mctxs in
      if id = Array.length t.mctxs then begin
        let bigger = Array.make (2 * id) t.mctxs.(0) in
        Array.blit t.mctxs 0 bigger 0 id;
        t.mctxs <- bigger;
        let bigger_p = Array.make (2 * id) false in
        Array.blit t.processed 0 bigger_p 0 id;
        t.processed <- bigger_p
      end;
      t.mctxs.(id) <- { mi_mq = mq; mi_ctx = c };
      t.num_mctxs <- id + 1;
      Hashtbl.replace t.mctx_intern key id;
      id

  let grow_nodes (t : t) =
    let n = Array.length t.node_descs in
    let bigger_d = Array.make (2 * n) t.node_descs.(0) in
    Array.blit t.node_descs 0 bigger_d 0 n;
    t.node_descs <- bigger_d;
    let bigger_pts = Array.make (2 * n) ObjSet.empty in
    Array.blit t.pts 0 bigger_pts 0 n;
    t.pts <- bigger_pts;
    let grow a default =
      let b = Array.make (2 * n) default in
      Array.blit a 0 b 0 n;
      b
    in
    t.succs <- grow t.succs [];
    t.loads <- grow t.loads [];
    t.stores <- grow t.stores [];
    t.dispatches <- grow t.dispatches []

  let intern_node (t : t) (d : node_desc) : int =
    match Hashtbl.find_opt t.node_intern d with
    | Some id -> id
    | None ->
      let id = t.num_nodes in
      if id = Array.length t.node_descs then grow_nodes t;
      t.node_descs.(id) <- d;
      t.num_nodes <- id + 1;
      Hashtbl.replace t.node_intern d id;
      id

  (* --- core propagation --- *)

  let obj_passes (t : t) (o : int) (ty : Types.ty) : bool =
    let oi = Context.obj t.ctxs o in
    match (oi.Context.oi_cls, ty) with
    | _, Types.Tclass c when String.equal c Types.object_class -> true
    | Context.Aclass c, Types.Tclass target ->
      Program.is_subclass t.p ~sub:c ~sup:target
    | Context.Astring, Types.Tclass target ->
      Program.is_subclass t.p ~sub:Types.string_class ~sup:target
    | Context.Aarray elem, Types.Tarray telem -> (
      match (elem, telem) with
      | Types.Tclass sub, Types.Tclass sup -> Program.is_subclass t.p ~sub ~sup
      | a, b -> Types.equal_ty a b)
    | Context.Aextern _, _ -> true
    | (Context.Aclass _ | Context.Astring), Types.Tarray _ -> false
    | Context.Aarray _, Types.Tclass _ -> false
    | _, (Types.Tint | Types.Tbool | Types.Tvoid | Types.Tnull) -> false

  let filter_delta (t : t) (filter : Types.ty option) (delta : ObjSet.t) :
      ObjSet.t =
    match filter with
    | None -> delta
    | Some ty -> ObjSet.filter (fun o -> obj_passes t o ty) delta

  let add_pts (t : t) (n : int) (objs : ObjSet.t) : unit =
    let fresh = ObjSet.diff objs t.pts.(n) in
    if not (ObjSet.is_empty fresh) then begin
      t.pts.(n) <- ObjSet.union t.pts.(n) fresh;
      t.work <- (n, fresh) :: t.work
    end

  let add_edge (t : t) ?(filter : Types.ty option) (src : int) (dst : int) :
      unit =
    if src <> dst && not (Hashtbl.mem t.edge_seen (src, dst)) then begin
      Hashtbl.replace t.edge_seen (src, dst) ();
      t.succs.(src) <- (dst, filter) :: t.succs.(src);
      let d = filter_delta t filter t.pts.(src) in
      if not (ObjSet.is_empty d) then add_pts t dst d
    end

  let add_load (t : t) ~(base : int) ~(field : string) ~(dst : int) : unit =
    t.loads.(base) <- (field, dst) :: t.loads.(base);
    ObjSet.iter
      (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
      t.pts.(base)

  let add_store (t : t) ~(base : int) ~(field : string) ~(src : int) : unit =
    t.stores.(base) <- (field, src) :: t.stores.(base);
    ObjSet.iter
      (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
      t.pts.(base)

  (* --- method constraint generation --- *)

  let is_ref_var (m : Instr.meth) (v : Instr.var) : bool =
    Types.is_reference (Instr.var_info m v).Instr.vi_ty

  let heap_ctx (t : t) (mc : int) : Context.ctx = t.mctxs.(mc).mi_ctx

  let alloc (t : t) (mc : int) ~(site : Instr.stmt_id)
      ~(cls : Context.alloc_class) : int =
    Context.intern_obj t.ctxs ~site ~cls ~ctx:(heap_ctx t mc)

  let is_container_class (t : t) (c : Types.class_name) : bool =
    List.exists
      (fun sup ->
        match Program.find_class t.p sup with
        | Some ci -> ci.Program.c_is_container
        | None -> false)
      (c :: Program.superclasses t.p c)

  let callee_ctx (t : t) ~(recv_obj : int) : Context.ctx =
    if not t.opts.obj_sens_containers then Context.Cnone
    else begin
      let oi = Context.obj t.ctxs recv_obj in
      match Context.dispatch_class oi.Context.oi_cls with
      | Some c when is_container_class t c ->
        let cand = Context.Crecv recv_obj in
        if Context.ctx_depth t.ctxs cand > t.opts.max_ctx_depth then
          Context.Cnone
        else cand
      | Some _ | None -> Context.Cnone
    end

  let record_call_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
      ~(callee : int) : unit =
    let key = (caller, stmt) in
    let cell =
      match Hashtbl.find_opt t.call_edges key with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace t.call_edges key r;
        r
    in
    if not (List.mem callee !cell) then cell := callee :: !cell

  let record_intrinsic_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
      ~(callee : Instr.method_qname) : unit =
    let key = (caller, stmt) in
    let cell =
      match Hashtbl.find_opt t.intrinsic_edges key with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace t.intrinsic_edges key r;
        r
    in
    if not (List.mem callee !cell) then cell := callee :: !cell

  let rec make_reachable (t : t) (mc : int) : unit =
    if not t.processed.(mc) then begin
      t.processed.(mc) <- true;
      let info = t.mctxs.(mc) in
      let m = Program.find_method_exn t.p info.mi_mq in
      match m.Instr.m_body with
      | Instr.Intrinsic _ | Instr.Abstract -> ()
      | Instr.Body _ ->
        let var v = intern_node t (Nvar (mc, v)) in
        Instr.iter_instrs m (fun _ i ->
            let site = i.Instr.i_id in
            match i.Instr.i_kind with
            | Instr.Const (x, Types.Cstr _) when is_ref_var m x ->
              add_pts t (var x)
                (ObjSet.singleton (alloc t mc ~site ~cls:Context.Astring))
            | Instr.Const _ -> ()
            (* String concatenation produces a fresh string object.  Without
               this allocation a concat-produced receiver has an empty
               points-to set, virtual dispatch on it resolves to nothing,
               and the SDG silently drops the call's argument edges — a
               soundness hole the fuzzer's dyn-thin-within-static-thin
               oracle caught. *)
            | Instr.Binop (x, Types.Concat, _, _) when is_ref_var m x ->
              add_pts t (var x)
                (ObjSet.singleton (alloc t mc ~site ~cls:Context.Astring))
            | Instr.New (x, c) ->
              add_pts t (var x)
                (ObjSet.singleton (alloc t mc ~site ~cls:(Context.Aclass c)))
            | Instr.New_array (x, elem, _) ->
              add_pts t (var x)
                (ObjSet.singleton (alloc t mc ~site ~cls:(Context.Aarray elem)))
            | Instr.Move (x, y) when is_ref_var m x && is_ref_var m y ->
              add_edge t (var y) (var x)
            | Instr.Move _ -> ()
            | Instr.Cast (x, ty, y) when is_ref_var m x && is_ref_var m y ->
              add_edge t ~filter:ty (var y) (var x)
            | Instr.Cast _ -> ()
            | Instr.Phi (x, ins) when is_ref_var m x ->
              List.iter (fun (_, y) -> add_edge t (var y) (var x)) ins
            | Instr.Phi _ -> ()
            | Instr.Load (x, y, f) when is_ref_var m x ->
              add_load t ~base:(var y) ~field:f ~dst:(var x)
            | Instr.Load _ -> ()
            | Instr.Store (x, f, y) when is_ref_var m y ->
              add_store t ~base:(var x) ~field:f ~src:(var y)
            | Instr.Store _ -> ()
            | Instr.Array_load (x, y, _) when is_ref_var m x ->
              add_load t ~base:(var y) ~field:elem_field ~dst:(var x)
            | Instr.Array_load _ -> ()
            | Instr.Array_store (a, _, x) when is_ref_var m x ->
              add_store t ~base:(var a) ~field:elem_field ~src:(var x)
            | Instr.Array_store _ -> ()
            | Instr.Static_load (x, c, f) when is_ref_var m x ->
              add_edge t (intern_node t (Nstatic (c, f))) (var x)
            | Instr.Static_load _ -> ()
            | Instr.Static_store (c, f, y) when is_ref_var m y ->
              add_edge t (var y) (intern_node t (Nstatic (c, f)))
            | Instr.Static_store _ -> ()
            | Instr.Call { lhs; kind; args } -> process_call t mc i lhs kind args
            | Instr.Binop _ | Instr.Unop _ | Instr.Instance_of _
            | Instr.Array_length _ | Instr.Nop -> ());
        Instr.iter_terms m (fun _ term ->
            match term.Instr.t_kind with
            | Instr.Return (Some v) when is_ref_var m v ->
              add_edge t (var v) (intern_node t (Nret mc))
            | Instr.Return _ | Instr.Goto _ | Instr.If _ | Instr.Throw _ -> ())
    end

  and process_call (t : t) (mc : int) (i : Instr.instr)
      (lhs : Instr.var option) (kind : Instr.call_kind)
      (args : Instr.var list) : unit =
    let info = t.mctxs.(mc) in
    let m = Program.find_method_exn t.p info.mi_mq in
    match kind with
    | Instr.Static mq ->
      let callee = Program.find_method_exn t.p mq in
      wire_call t ~caller:mc ~stmt:i.Instr.i_id ~caller_meth:m ~callee
        ~callee_ctx:Context.Cnone ~recv_obj:None ~lhs ~args
    | Instr.Special _ | Instr.Virtual _ -> (
      (* dispatch (or context selection, for Special) driven by the receiver *)
      match args with
      | recv :: _ when is_ref_var m recv ->
        let d =
          { d_caller = mc; d_stmt = i.Instr.i_id; d_kind = kind;
            d_args = args; d_lhs = lhs }
        in
        let rnode = intern_node t (Nvar (mc, recv)) in
        t.dispatches.(rnode) <- d :: t.dispatches.(rnode);
        ObjSet.iter (fun o -> process_dispatch t d o) t.pts.(rnode)
      | _ -> ())

  and process_dispatch (t : t) (d : dispatch) (recv_obj : int) : unit =
    let oi = Context.obj t.ctxs recv_obj in
    match Context.dispatch_class oi.Context.oi_cls with
    | None -> ()
    | Some cls -> (
      let target =
        match d.d_kind with
        | Instr.Virtual name -> Program.dispatch t.p cls name
        | Instr.Special mq -> Program.find_method t.p mq
        | Instr.Static _ -> None
      in
      match target with
      | None -> ()
      | Some callee ->
        let caller_meth =
          Program.find_method_exn t.p t.mctxs.(d.d_caller).mi_mq
        in
        let cctx = callee_ctx t ~recv_obj in
        wire_call t ~caller:d.d_caller ~stmt:d.d_stmt ~caller_meth ~callee
          ~callee_ctx:cctx ~recv_obj:(Some recv_obj) ~lhs:d.d_lhs
          ~args:d.d_args)

  and wire_call (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
      ~(caller_meth : Instr.meth) ~(callee : Instr.meth)
      ~(callee_ctx : Context.ctx) ~(recv_obj : int option)
      ~(lhs : Instr.var option) ~(args : Instr.var list) : unit =
    match callee.Instr.m_body with
    | Instr.Intrinsic intr ->
      record_intrinsic_edge t ~caller ~stmt ~callee:callee.Instr.m_qname;
      (match (Instr.intrinsic_allocates intr, lhs) with
      | Some _cls, Some x when is_ref_var caller_meth x ->
        let o = alloc t caller ~site:stmt ~cls:Context.Astring in
        add_pts t (intern_node t (Nvar (caller, x))) (ObjSet.singleton o)
      | _ -> ())
    | Instr.Abstract -> ()
    | Instr.Body _ ->
      let cmc = intern_mctx t callee.Instr.m_qname callee_ctx in
      record_call_edge t ~caller ~stmt ~callee:cmc;
      make_reachable t cmc;
      (* Receiver: flows as a single object, keeping obj-sensitivity sharp. *)
      (match (recv_obj, callee.Instr.m_params) with
      | Some o, this_param :: _ ->
        add_pts t (intern_node t (Nvar (cmc, this_param))) (ObjSet.singleton o)
      | _ -> ());
      let key = (caller, stmt, cmc) in
      if not (Hashtbl.mem t.wired key) then begin
        Hashtbl.replace t.wired key ();
        (* Non-receiver arguments and the return value. *)
        let params = callee.Instr.m_params in
        let skip_recv = recv_obj <> None in
        let rec wire_args ps as_ first =
          match (ps, as_) with
          | [], _ | _, [] -> ()
          | p :: ps', a :: as_' ->
            if not (first && skip_recv) then begin
              if is_ref_var callee p && is_ref_var caller_meth a then
                add_edge t
                  (intern_node t (Nvar (caller, a)))
                  (intern_node t (Nvar (cmc, p)))
            end;
            wire_args ps' as_' false
        in
        wire_args params args true;
        match lhs with
        | Some x
          when is_ref_var caller_meth x
               && Types.is_reference callee.Instr.m_ret_ty ->
          add_edge t (intern_node t (Nret cmc))
            (intern_node t (Nvar (caller, x)))
        | _ -> ()
      end

  (* --- solving --- *)

  let solve (t : t) : unit =
    let rec drain () =
      match t.work with
      | [] -> ()
      | (n, delta) :: rest ->
        t.work <- rest;
        List.iter
          (fun (dst, filter) ->
            let d = filter_delta t filter delta in
            if not (ObjSet.is_empty d) then add_pts t dst d)
          t.succs.(n);
        List.iter
          (fun (field, dst) ->
            ObjSet.iter
              (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
              delta)
          t.loads.(n);
        List.iter
          (fun (field, src) ->
            ObjSet.iter
              (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
              delta)
          t.stores.(n);
        List.iter
          (fun d -> ObjSet.iter (fun o -> process_dispatch t d o) delta)
          t.dispatches.(n);
        drain ()
    in
    drain ()

  (* --- entry points --- *)

  let analyze ?(opts = default_opts) (p : Program.t) : result =
    let t =
      { p;
        opts;
        ctxs = Context.create ();
        mctxs =
          Array.make 64
            { mi_mq = { Instr.mq_class = ""; mq_name = "" };
              mi_ctx = Context.Cnone };
        num_mctxs = 0;
        mctx_intern = Hashtbl.create 64;
        processed = Array.make 64 false;
        node_descs = Array.make 256 (Nstatic ("", ""));
        num_nodes = 0;
        node_intern = Hashtbl.create 256;
        pts = Array.make 256 ObjSet.empty;
        succs = Array.make 256 [];
        loads = Array.make 256 [];
        stores = Array.make 256 [];
        dispatches = Array.make 256 [];
        edge_seen = Hashtbl.create 1024;
        call_edges = Hashtbl.create 256;
        intrinsic_edges = Hashtbl.create 64;
        wired = Hashtbl.create 256;
        work = [] }
    in
    let entry_mq = Program.entry_method p in
    (match Program.find_method p entry_mq with
    | None -> ()
    | Some main ->
      let emc = intern_mctx t entry_mq Context.Cnone in
      make_reachable t emc;
      (* main's String[] argument: synthetic array of synthetic strings *)
      (match main.Instr.m_params with
      | [ pv ] when is_ref_var main pv ->
        let arr =
          Context.intern_obj t.ctxs ~site:(-1)
            ~cls:(Context.Aarray (Types.Tclass Types.string_class))
            ~ctx:Context.Cnone
        in
        let str =
          Context.intern_obj t.ctxs ~site:(-2) ~cls:Context.Astring
            ~ctx:Context.Cnone
        in
        add_pts t (intern_node t (Nvar (emc, pv))) (ObjSet.singleton arr);
        add_pts t
          (intern_node t (Nfield (arr, elem_field)))
          (ObjSet.singleton str)
      | _ -> ()));
    solve t;
    t

  (* --- queries (the subset parity checks need) --- *)

  let mctx_info (t : result) (mc : int) : Instr.method_qname * Context.ctx =
    (t.mctxs.(mc).mi_mq, t.mctxs.(mc).mi_ctx)

  let num_objects (t : result) : int = Context.num_objs t.ctxs

  let pts_dump (t : result) : (string * string list) list =
    build_pts_dump ~ctxs:t.ctxs
      ~mctx_of:(fun mc -> mctx_info t mc)
      ~num_nodes:t.num_nodes
      ~desc_of:(fun i -> t.node_descs.(i))
      ~objs_of:(fun i -> ObjSet.elements t.pts.(i))

  let call_graph_dump (t : result) : (string * string list) list =
    let mk caller stmt tag = tag ^ mctx_key_str t.ctxs
        (fst (mctx_info t caller)) (snd (mctx_info t caller))
      ^ "#" ^ string_of_int stmt
    in
    let entries = ref [] in
    Hashtbl.iter
      (fun (caller, stmt) cell ->
        let callees =
          List.map
            (fun cmc ->
              let mq, c = mctx_info t cmc in
              mctx_key_str t.ctxs mq c)
            !cell
        in
        entries := (mk caller stmt "C:", List.sort compare callees) :: !entries)
      t.call_edges;
    Hashtbl.iter
      (fun (caller, stmt) cell ->
        let callees = List.map Instr.method_qname_to_string !cell in
        entries := (mk caller stmt "I:", List.sort compare callees) :: !entries)
      t.intrinsic_edges;
    List.sort compare !entries
end

(* ------------------------------------------------------------------ *)
(* Main solver: bitset data plane + online cycle elimination           *)
(* ------------------------------------------------------------------ *)

(* Per-call-site callee cell: bitset dedup + insertion-ordered list. *)
type ccell = { cs_seen : Bits.t; mutable cs_list : int list }
type icell = { is_seen : Bits.t; mutable is_list : Instr.method_qname list }

type t = {
  p : Program.t;
  opts : opts;
  ctxs : Context.t;
  (* method contexts *)
  mutable mctxs : mctx_info array;
  mutable num_mctxs : int;
  (* Keyed on the qname record directly: the reference solver interns on
     [method_qname_to_string], which is [Format.asprintf] — visibly hot
     in profiles.  Structural hashing of a two-string record is cheap. *)
  mctx_intern : (Instr.method_qname * Context.ctx, int) Hashtbl.t;
  mutable processed : bool array;
  (* nodes *)
  mutable node_descs : node_desc array;
  mutable num_nodes : int;
  node_intern : (node_desc, int) Hashtbl.t;
  (* data plane: bitset pts + accumulated deltas, union-find over nodes *)
  mutable pts : Bits.t array;
  mutable delta : Bits.t array;
  mutable parent : int array;
  mutable rank : int array;
  mutable succs : (int * Types.ty option) list array;
  mutable succ_seen : Bits.t array;     (* per-src dedup row over dst reps *)
  mutable loads : (string * int) list array;
  mutable stores : (string * int) list array;
  mutable dispatches : dispatch list array;
  mutable deg : int array;              (* incremental constraint degree *)
  (* per-method-context constraint provenance (reverse insertion order),
     the replay log of [resolve_delta].  [pv_on] is false for
     [of_reference] lifts, which have no generation pass to log. *)
  mutable pv : pv_op list array;
  pv_on : bool;
  mutable obj_mc : int array;           (* allocating mctx per object; -1 none *)
  (* call graph *)
  call_edges : (int * Instr.stmt_id, ccell) Hashtbl.t;
  intr_intern : (Instr.method_qname, int) Hashtbl.t;
  intrinsic_edges : (int * Instr.stmt_id, icell) Hashtbl.t;
  wired : (int * Instr.stmt_id * int, unit) Hashtbl.t;
  (* worklist: entry-unique FIFO int ring (dirty bit = queued) *)
  mutable ring : int array;
  mutable head : int;
  mutable tail : int;
  mutable ring_len : int;
  queued : Bits.t;
  (* lazy cycle detection *)
  mutable lcd_pending : (int * int) list;
  lcd_done : (int * int, unit) Hashtbl.t;
  mutable lcd_fuel : int;               (* bounded-regret budget, see below *)
  mutable lcd_mark : int array;         (* DFS visited stamps (no per-run alloc) *)
  mutable lcd_stamp : int;
  (* hot-path telemetry: the per-domain counter cells resolved ONCE per
     solver, so the inner loops pay a plain [incr] instead of a DLS
     lookup per event (measured ~20% of solve wall on the suite).  Safe
     because a solver never crosses domains, and [Slice_obs.scoped]
     zeroes/restores through these same refs. *)
  obs_pts_objs : int ref;
  obs_diff_hits : int ref;
  obs_edges : int ref;
  obs_iters : int ref;
  obs_constraints : int ref;
  obs_cycles : int ref;
  obs_lcd : int ref;
  (* scratch *)
  mutable spare : Bits.t;               (* drained-delta swap buffer *)
  fscratch : Bits.t;                    (* filtered-propagation scratch *)
  (* memoized method -> mctx list index (satellite) *)
  mutable meth_index : (Instr.method_qname, int list) Hashtbl.t;
  mutable meth_index_stamp : int;       (* num_mctxs at build; -1 invalid *)
}

type result = t

(* --- union-find ---------------------------------------------------- *)

let rec find (t : t) (n : int) : int =
  let p = t.parent.(n) in
  if p = n then n
  else begin
    let r = find t p in
    t.parent.(n) <- r;
    r
  end

(* Read-only find: no path compression, safe to call from several
   domains at once AFTER the solve is done.  Same representative as
   [find] — it just walks instead of rewriting. *)
let rec find_ro (t : t) (n : int) : int =
  let p = t.parent.(n) in
  if p = n then n else find_ro t p

(* Compress every union-find path once, so a subsequent concurrent read
   phase ([find_ro] via [pts_iter_var]) is all O(1) parent hits with no
   writes in flight.  Callers that fan a finished [result] out to worker
   domains (parallel mod-ref, sharded SDG wiring) run this first. *)
let prepare_concurrent_reads (t : t) : unit =
  for n = 0 to t.num_nodes - 1 do
    ignore (find t n)
  done

(* --- interning ----------------------------------------------------- *)

let intern_mctx (t : t) (mq : Instr.method_qname) (c : Context.ctx) : int =
  let key = (mq, c) in
  match Hashtbl.find_opt t.mctx_intern key with
  | Some id -> id
  | None ->
    let id = t.num_mctxs in
    if id = Array.length t.mctxs then begin
      let bigger = Array.make (2 * id) t.mctxs.(0) in
      Array.blit t.mctxs 0 bigger 0 id;
      t.mctxs <- bigger;
      let bigger_p = Array.make (2 * id) false in
      Array.blit t.processed 0 bigger_p 0 id;
      t.processed <- bigger_p;
      let bigger_pv = Array.make (2 * id) [] in
      Array.blit t.pv 0 bigger_pv 0 id;
      t.pv <- bigger_pv
    end;
    t.mctxs.(id) <- { mi_mq = mq; mi_ctx = c };
    t.num_mctxs <- id + 1;
    Hashtbl.replace t.mctx_intern key id;
    if c <> Context.Cnone then Slice_obs.bump c_context_clones;
    id

let dummy_bits = Bits.create ~capacity:1 ()

let grow_nodes (t : t) =
  let n = Array.length t.node_descs in
  let grow a default =
    let b = Array.make (2 * n) default in
    Array.blit a 0 b 0 n;
    b
  in
  t.node_descs <- grow t.node_descs t.node_descs.(0);
  t.pts <- grow t.pts dummy_bits;
  t.delta <- grow t.delta dummy_bits;
  t.succ_seen <- grow t.succ_seen dummy_bits;
  t.parent <- grow t.parent 0;
  t.rank <- grow t.rank 0;
  t.deg <- grow t.deg 0;
  t.lcd_mark <- grow t.lcd_mark 0;
  t.succs <- grow t.succs [];
  t.loads <- grow t.loads [];
  t.stores <- grow t.stores [];
  t.dispatches <- grow t.dispatches []

let intern_node (t : t) (d : node_desc) : int =
  match Hashtbl.find_opt t.node_intern d with
  | Some id -> id
  | None ->
    let id = t.num_nodes in
    if id = Array.length t.node_descs then grow_nodes t;
    t.node_descs.(id) <- d;
    t.pts.(id) <- Bits.create ~capacity:64 ();
    t.delta.(id) <- Bits.create ~capacity:64 ();
    t.succ_seen.(id) <- Bits.create ~capacity:64 ();
    t.parent.(id) <- id;
    t.rank.(id) <- 0;
    t.deg.(id) <- 0;
    t.num_nodes <- id + 1;
    Hashtbl.replace t.node_intern d id;
    id

(* --- worklist ring ------------------------------------------------- *)

let grow_ring (t : t) =
  let cap = Array.length t.ring in
  let nr = Array.make (2 * cap) 0 in
  for i = 0 to t.ring_len - 1 do
    nr.(i) <- t.ring.((t.head + i) mod cap)
  done;
  t.ring <- nr;
  t.head <- 0;
  t.tail <- t.ring_len

(* Entry-unique: a node sits on the ring at most once; its delta keeps
   accumulating until it is popped. *)
let enqueue (t : t) (n : int) =
  if Bits.add t.queued n then begin
    if t.ring_len = Array.length t.ring then grow_ring t;
    t.ring.(t.tail) <- n;
    t.tail <- (t.tail + 1) mod Array.length t.ring;
    t.ring_len <- t.ring_len + 1
  end

(* --- core propagation ---------------------------------------------- *)

let obj_passes (t : t) (o : int) (ty : Types.ty) : bool =
  let oi = Context.obj t.ctxs o in
  match (oi.Context.oi_cls, ty) with
  | _, Types.Tclass c when String.equal c Types.object_class -> true
  | Context.Aclass c, Types.Tclass target ->
    Program.is_subclass t.p ~sub:c ~sup:target
  | Context.Astring, Types.Tclass target ->
    Program.is_subclass t.p ~sub:Types.string_class ~sup:target
  | Context.Aarray elem, Types.Tarray telem -> (
    match (elem, telem) with
    | Types.Tclass sub, Types.Tclass sup -> Program.is_subclass t.p ~sub ~sup
    | a, b -> Types.equal_ty a b)
  | Context.Aextern _, _ -> true
  | (Context.Aclass _ | Context.Astring), Types.Tarray _ -> false
  | Context.Aarray _, Types.Tclass _ -> false
  | _, (Types.Tint | Types.Tbool | Types.Tvoid | Types.Tnull) -> false

(* Record a lazy-cycle-detection candidate: the unfiltered copy edge
   s -> d propagated nothing fresh, so d may reach back to s.  Processed
   between worklist pops (never mid-pop: collapsing while a node's
   constraint lists are being iterated would be hazardous). *)
let lcd_candidate (t : t) (s : int) (d : int) =
  if t.lcd_fuel > 0 && not (Hashtbl.mem t.lcd_done (s, d)) then
    t.lcd_pending <- (s, d) :: t.lcd_pending

(* Seed a single object into a node's points-to set. *)
let add_obj (t : t) (n : int) (o : int) : unit =
  let rn = find t n in
  if Bits.add t.pts.(rn) o then begin
    incr t.obs_pts_objs;
    ignore (Bits.add t.delta.(rn) o);
    enqueue t rn
  end
  else incr t.obs_diff_hits

(* Propagate [src_bits] into rep [rd] (unfiltered). *)
let propagate_into (t : t) ~(src_bits : Bits.t) ~(rd : int) ~(lcd_src : int option)
    : unit =
  let added = Bits.propagate ~src:src_bits ~pts:t.pts.(rd) ~delta:t.delta.(rd) in
  if added > 0 then begin
    t.obs_pts_objs := !(t.obs_pts_objs) + added;
    enqueue t rd
  end
  else begin
    incr t.obs_diff_hits;
    match lcd_src with
    | Some rs when not (Bits.is_empty src_bits) -> lcd_candidate t rs rd
    | _ -> ()
  end

(* Propagate the subset of [src_bits] passing cast filter [ty] into [rd]. *)
let propagate_filtered (t : t) ~(src_bits : Bits.t) ~(ty : Types.ty)
    ~(rd : int) : unit =
  Bits.clear t.fscratch;
  let any = ref false in
  Bits.iter
    (fun o ->
      if obj_passes t o ty then begin
        ignore (Bits.add t.fscratch o);
        any := true
      end)
    src_bits;
  if !any then begin
    let added =
      Bits.propagate ~src:t.fscratch ~pts:t.pts.(rd) ~delta:t.delta.(rd)
    in
    if added > 0 then begin
      t.obs_pts_objs := !(t.obs_pts_objs) + added;
      enqueue t rd
    end
    else incr t.obs_diff_hits
  end;
  Bits.clear t.fscratch

let add_edge (t : t) ?(filter : Types.ty option) (src : int) (dst : int) : unit =
  let rs = find t src and rd = find t dst in
  if rs <> rd && Bits.add t.succ_seen.(rs) rd then begin
    incr t.obs_edges;
    t.succs.(rs) <- (rd, filter) :: t.succs.(rs);
    t.deg.(rs) <- t.deg.(rs) + 1;
    if not (Bits.is_empty t.pts.(rs)) then
      match filter with
      | None -> propagate_into t ~src_bits:t.pts.(rs) ~rd ~lcd_src:(Some rs)
      | Some ty -> propagate_filtered t ~src_bits:t.pts.(rs) ~ty ~rd
  end

let add_load (t : t) ~(base : int) ~(field : string) ~(dst : int) : unit =
  let rb = find t base in
  t.loads.(rb) <- (field, dst) :: t.loads.(rb);
  t.deg.(rb) <- t.deg.(rb) + 1;
  Bits.iter
    (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
    t.pts.(rb)

let add_store (t : t) ~(base : int) ~(field : string) ~(src : int) : unit =
  let rb = find t base in
  t.stores.(rb) <- (field, src) :: t.stores.(rb);
  t.deg.(rb) <- t.deg.(rb) + 1;
  Bits.iter
    (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
    t.pts.(rb)

(* --- cycle collapsing ---------------------------------------------- *)

(* Merge the equivalence classes of [a] and [b]; returns the new rep.
   Only ever called between worklist pops.  The rep's accumulated delta
   must cover every object either side's constraints have not yet
   processed: delta(r) := delta(r) ∪ delta(c) ∪ (pts(r) Δ pts(c)) —
   the symmetric difference because each side has already run its own
   constraints only against its own pts. *)
let merge (t : t) (a : int) (b : int) : int =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    incr t.obs_cycles;
    let r, c = if t.rank.(ra) >= t.rank.(rb) then (ra, rb) else (rb, ra) in
    if t.rank.(r) = t.rank.(c) then t.rank.(r) <- t.rank.(r) + 1;
    t.parent.(c) <- r;
    (* pts(r)\pts(c) -> delta(r); mutating pts(c) is harmless (dead). *)
    ignore (Bits.propagate ~src:t.pts.(r) ~pts:t.pts.(c) ~delta:t.delta.(r));
    (* pts(c)\pts(r) -> pts(r) and delta(r). *)
    ignore (Bits.propagate ~src:t.pts.(c) ~pts:t.pts.(r) ~delta:t.delta.(r));
    ignore (Bits.union_into ~src:t.delta.(c) ~dst:t.delta.(r));
    ignore (Bits.union_into ~src:t.succ_seen.(c) ~dst:t.succ_seen.(r));
    t.succs.(r) <- List.rev_append t.succs.(c) t.succs.(r);
    t.succs.(c) <- [];
    t.loads.(r) <- List.rev_append t.loads.(c) t.loads.(r);
    t.loads.(c) <- [];
    t.stores.(r) <- List.rev_append t.stores.(c) t.stores.(r);
    t.stores.(c) <- [];
    t.dispatches.(r) <- List.rev_append t.dispatches.(c) t.dispatches.(r);
    t.dispatches.(c) <- [];
    t.deg.(r) <- t.deg.(r) + t.deg.(c);
    t.deg.(c) <- 0;
    Bits.clear t.pts.(c);
    Bits.clear t.delta.(c);
    Bits.clear t.succ_seen.(c);
    if not (Bits.is_empty t.delta.(r)) then enqueue t r;
    r
  end

(* Copy cycles in these programs are short (recursion and loops thread a
   handful of variables), so a deep DFS buys nothing: a small per-run
   node budget finds the same cycles for a fraction of the walk.  The
   fuel bound caps total unproductive detection work — every run costs
   one unit, every successful collapse refunds [lcd_refund] — so a
   cycle-free program (e.g. a deep pipeline, where every redundant copy
   edge is a candidate) stops paying for detection after [lcd_fuel_init]
   misses instead of DFS-walking its whole copy graph per candidate.
   Collapsing remains exact; the bound only limits how hard we look. *)
let lcd_budget = 64
let lcd_fuel_init = 512
let lcd_refund = 16

(* Nuutila-flavoured lazy collapse: DFS from [d0] along unfiltered copy
   edges looking for [s0]'s class; every node on a found path lies on a
   copy cycle through the redundant edge s0 -> d0 and is folded into
   s0's class on unwind.  Unfiltered copy cycles force equal points-to
   sets in the least fixpoint, so collapsing them is exact. *)
let lcd_run (t : t) (s0 : int) (d0 : int) : unit =
  let s = find t s0 and d = find t d0 in
  if t.lcd_fuel > 0 && s <> d && not (Hashtbl.mem t.lcd_done (s, d)) then begin
    Hashtbl.replace t.lcd_done (s, d) ();
    incr t.obs_lcd;
    t.lcd_fuel <- t.lcd_fuel - 1;
    let budget = ref lcd_budget in
    t.lcd_stamp <- t.lcd_stamp + 1;
    let stamp = t.lcd_stamp in
    let rec dfs n =
      let n = find t n in
      if n = find t s then true
      else if t.lcd_mark.(n) = stamp || !budget <= 0 then false
      else begin
        decr budget;
        t.lcd_mark.(n) <- stamp;
        let found =
          List.exists
            (fun (dst, filter) ->
              match filter with Some _ -> false | None -> dfs dst)
            t.succs.(n)
        in
        if found then ignore (merge t s n);
        found
      end
    in
    if dfs d then
      t.lcd_fuel <- min lcd_fuel_init (t.lcd_fuel + lcd_refund)
  end

let process_pending_lcd (t : t) : unit =
  match t.lcd_pending with
  | [] -> ()
  | pending ->
    t.lcd_pending <- [];
    List.iter (fun (s, d) -> lcd_run t s d) pending

(* --- method constraint generation ---------------------------------- *)

let is_ref_var (m : Instr.meth) (v : Instr.var) : bool =
  Types.is_reference (Instr.var_info m v).Instr.vi_ty

let heap_ctx (t : t) (mc : int) : Context.ctx = t.mctxs.(mc).mi_ctx

let alloc (t : t) (mc : int) ~(site : Instr.stmt_id)
    ~(cls : Context.alloc_class) : int =
  let o = Context.intern_obj t.ctxs ~site ~cls ~ctx:(heap_ctx t mc) in
  (* Ownership: (site, ctx) pin an object to exactly one method context,
     so first-writer-wins is exact.  [resolve_delta] sweeps objects whose
     owner was retracted — their allocation sites no longer exist. *)
  if t.pv_on then begin
    if o >= Array.length t.obj_mc then begin
      let cap = max 64 (Array.length t.obj_mc) in
      let bigger = Array.make (max (2 * cap) (o + 1)) (-1) in
      Array.blit t.obj_mc 0 bigger 0 (Array.length t.obj_mc);
      t.obj_mc <- bigger
    end;
    if t.obj_mc.(o) < 0 then t.obj_mc.(o) <- mc
  end;
  o

let is_container_class (t : t) (c : Types.class_name) : bool =
  List.exists
    (fun sup ->
      match Program.find_class t.p sup with
      | Some ci -> ci.Program.c_is_container
      | None -> false)
    (c :: Program.superclasses t.p c)

let callee_ctx (t : t) ~(recv_obj : int) : Context.ctx =
  if not t.opts.obj_sens_containers then Context.Cnone
  else begin
    let oi = Context.obj t.ctxs recv_obj in
    match Context.dispatch_class oi.Context.oi_cls with
    | Some c when is_container_class t c ->
      let cand = Context.Crecv recv_obj in
      if Context.ctx_depth t.ctxs cand > t.opts.max_ctx_depth then Context.Cnone
      else cand
    | Some _ | None -> Context.Cnone
  end

(* Call-edge dedup: a bitset over callee mctx ids per call site (was
   [List.mem] on the accumulating list). *)
let record_call_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(callee : int) : unit =
  let key = (caller, stmt) in
  let cell =
    match Hashtbl.find_opt t.call_edges key with
    | Some c -> c
    | None ->
      let c = { cs_seen = Bits.create ~capacity:64 (); cs_list = [] } in
      Hashtbl.replace t.call_edges key c;
      c
  in
  if Bits.add cell.cs_seen callee then cell.cs_list <- callee :: cell.cs_list

let intr_id (t : t) (mq : Instr.method_qname) : int =
  match Hashtbl.find_opt t.intr_intern mq with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.intr_intern in
    Hashtbl.replace t.intr_intern mq id;
    id

let record_intrinsic_edge (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(callee : Instr.method_qname) : unit =
  let key = (caller, stmt) in
  let cell =
    match Hashtbl.find_opt t.intrinsic_edges key with
    | Some c -> c
    | None ->
      let c = { is_seen = Bits.create ~capacity:8 (); is_list = [] } in
      Hashtbl.replace t.intrinsic_edges key c;
      c
  in
  if Bits.add cell.is_seen (intr_id t callee) then
    cell.is_list <- callee :: cell.is_list

(* Append to a method context's provenance log.  Only the structural
   entry points below call this; derived constraint work (dispatch
   wiring, load/store-materialised edges) is intentionally unlogged. *)
let pv_log (t : t) (mc : int) (op : pv_op) : unit =
  if t.pv_on then t.pv.(mc) <- op :: t.pv.(mc)

let rec make_reachable (t : t) (mc : int) : unit =
  if not t.processed.(mc) then begin
    t.processed.(mc) <- true;
    match t.pv.(mc) with
    | (_ :: _) as ops when t.pv_on ->
      (* A [resolve_delta] re-reach of a method whose body is unchanged:
         replay the recorded constraints instead of re-walking the body
         (and re-interning what is already interned). *)
      List.iter (replay_op t mc) (List.rev ops)
    | _ -> (
      let info = t.mctxs.(mc) in
      let m = Program.find_method_exn t.p info.mi_mq in
      match m.Instr.m_body with
      | Instr.Intrinsic _ | Instr.Abstract -> ()
      | Instr.Body _ ->
        let var v = intern_node t (Nvar (mc, v)) in
        let seed n o =
          pv_log t mc (Pseed (n, o));
          add_obj t n o
        in
        let edge ?filter src dst =
          pv_log t mc (Pedge (src, dst, filter));
          add_edge t ?filter src dst
        in
        let load ~base ~field ~dst =
          pv_log t mc (Pload (base, field, dst));
          add_load t ~base ~field ~dst
        in
        let store ~base ~field ~src =
          pv_log t mc (Pstore (base, field, src));
          add_store t ~base ~field ~src
        in
        Instr.iter_instrs m (fun _ i ->
            let site = i.Instr.i_id in
            match i.Instr.i_kind with
            | Instr.Const (x, Types.Cstr _) when is_ref_var m x ->
              seed (var x) (alloc t mc ~site ~cls:Context.Astring)
            | Instr.Const _ -> ()
            (* Concat results are fresh strings; see the matching case in the
               reference solver above for why omitting this is a soundness
               hole. *)
            | Instr.Binop (x, Types.Concat, _, _) when is_ref_var m x ->
              seed (var x) (alloc t mc ~site ~cls:Context.Astring)
            | Instr.New (x, c) ->
              seed (var x) (alloc t mc ~site ~cls:(Context.Aclass c))
            | Instr.New_array (x, elem, _) ->
              seed (var x) (alloc t mc ~site ~cls:(Context.Aarray elem))
            | Instr.Move (x, y) when is_ref_var m x && is_ref_var m y ->
              edge (var y) (var x)
            | Instr.Move _ -> ()
            | Instr.Cast (x, ty, y) when is_ref_var m x && is_ref_var m y ->
              edge ~filter:ty (var y) (var x)
            | Instr.Cast _ -> ()
            | Instr.Phi (x, ins) when is_ref_var m x ->
              List.iter (fun (_, y) -> edge (var y) (var x)) ins
            | Instr.Phi _ -> ()
            | Instr.Load (x, y, f) when is_ref_var m x ->
              load ~base:(var y) ~field:f ~dst:(var x)
            | Instr.Load _ -> ()
            | Instr.Store (x, f, y) when is_ref_var m y ->
              store ~base:(var x) ~field:f ~src:(var y)
            | Instr.Store _ -> ()
            | Instr.Array_load (x, y, _) when is_ref_var m x ->
              load ~base:(var y) ~field:elem_field ~dst:(var x)
            | Instr.Array_load _ -> ()
            | Instr.Array_store (a, _, x) when is_ref_var m x ->
              store ~base:(var a) ~field:elem_field ~src:(var x)
            | Instr.Array_store _ -> ()
            | Instr.Static_load (x, c, f) when is_ref_var m x ->
              edge (intern_node t (Nstatic (c, f))) (var x)
            | Instr.Static_load _ -> ()
            | Instr.Static_store (c, f, y) when is_ref_var m y ->
              edge (var y) (intern_node t (Nstatic (c, f)))
            | Instr.Static_store _ -> ()
            | Instr.Call { lhs; kind; args } -> process_call t mc i lhs kind args
            | Instr.Binop _ | Instr.Unop _ | Instr.Instance_of _
            | Instr.Array_length _ | Instr.Nop -> ());
        Instr.iter_terms m (fun _ term ->
            match term.Instr.t_kind with
            | Instr.Return (Some v) when is_ref_var m v ->
              edge (var v) (intern_node t (Nret mc))
            | Instr.Return _ | Instr.Goto _ | Instr.If _ | Instr.Throw _ -> ()))
  end

and process_call (t : t) (mc : int) (i : Instr.instr) (lhs : Instr.var option)
    (kind : Instr.call_kind) (args : Instr.var list) : unit =
  let info = t.mctxs.(mc) in
  let m = Program.find_method_exn t.p info.mi_mq in
  match kind with
  | Instr.Static mq ->
    pv_log t mc
      (Pcall
         { d_caller = mc; d_stmt = i.Instr.i_id; d_kind = kind; d_args = args;
           d_lhs = lhs });
    let callee = Program.find_method_exn t.p mq in
    wire_call t ~caller:mc ~stmt:i.Instr.i_id ~caller_meth:m ~callee
      ~callee_ctx:Context.Cnone ~recv_obj:None ~lhs ~args
  | Instr.Special _ | Instr.Virtual _ -> (
    (* dispatch (or context selection, for Special) driven by the receiver *)
    match args with
    | recv :: _ when is_ref_var m recv ->
      let d =
        { d_caller = mc; d_stmt = i.Instr.i_id; d_kind = kind; d_args = args;
          d_lhs = lhs }
      in
      pv_log t mc (Pcall d);
      register_dispatch t mc d
    | _ -> ())

(* Attach a dispatch record to the receiver's representative and resolve
   it against whatever the receiver already points to.  Shared between
   first-time constraint generation and [resolve_delta] replay so both
   resolve dispatch against the CURRENT program. *)
and register_dispatch (t : t) (mc : int) (d : dispatch) : unit =
  match d.d_args with
  | recv :: _ ->
    let rnode = find t (intern_node t (Nvar (mc, recv))) in
    t.dispatches.(rnode) <- d :: t.dispatches.(rnode);
    t.deg.(rnode) <- t.deg.(rnode) + 1;
    Bits.iter (fun o -> process_dispatch t d o) t.pts.(rnode)
  | [] -> ()

(* Replay one logged constraint.  Call sites re-run full resolution
   ([wire_call] / dispatch registration) so the call graph is re-derived
   from the current program and current points-to state — the log never
   stores dispatch OUTCOMES, only the dispatch obligations. *)
and replay_op (t : t) (mc : int) (op : pv_op) : unit =
  match op with
  | Pseed (n, o) -> add_obj t n o
  | Pedge (src, dst, filter) -> add_edge t ?filter src dst
  | Pload (base, field, dst) -> add_load t ~base ~field ~dst
  | Pstore (base, field, src) -> add_store t ~base ~field ~src
  | Pcall d -> (
    match d.d_kind with
    | Instr.Static mq ->
      let m = Program.find_method_exn t.p t.mctxs.(mc).mi_mq in
      let callee = Program.find_method_exn t.p mq in
      wire_call t ~caller:mc ~stmt:d.d_stmt ~caller_meth:m ~callee
        ~callee_ctx:Context.Cnone ~recv_obj:None ~lhs:d.d_lhs ~args:d.d_args
    | Instr.Virtual _ | Instr.Special _ -> register_dispatch t mc d)

and process_dispatch (t : t) (d : dispatch) (recv_obj : int) : unit =
  let oi = Context.obj t.ctxs recv_obj in
  match Context.dispatch_class oi.Context.oi_cls with
  | None -> ()
  | Some cls -> (
    let target =
      match d.d_kind with
      | Instr.Virtual name -> Program.dispatch t.p cls name
      | Instr.Special mq -> Program.find_method t.p mq
      | Instr.Static _ -> None
    in
    match target with
    | None -> ()
    | Some callee ->
      let caller_meth = Program.find_method_exn t.p t.mctxs.(d.d_caller).mi_mq in
      let cctx = callee_ctx t ~recv_obj in
      wire_call t ~caller:d.d_caller ~stmt:d.d_stmt ~caller_meth ~callee
        ~callee_ctx:cctx ~recv_obj:(Some recv_obj) ~lhs:d.d_lhs ~args:d.d_args)

and wire_call (t : t) ~(caller : int) ~(stmt : Instr.stmt_id)
    ~(caller_meth : Instr.meth) ~(callee : Instr.meth)
    ~(callee_ctx : Context.ctx) ~(recv_obj : int option)
    ~(lhs : Instr.var option) ~(args : Instr.var list) : unit =
  match callee.Instr.m_body with
  | Instr.Intrinsic intr ->
    record_intrinsic_edge t ~caller ~stmt ~callee:callee.Instr.m_qname;
    (match (Instr.intrinsic_allocates intr, lhs) with
    | Some _cls, Some x when is_ref_var caller_meth x ->
      let o = alloc t caller ~site:stmt ~cls:Context.Astring in
      add_obj t (intern_node t (Nvar (caller, x))) o
    | _ -> ())
  | Instr.Abstract -> ()
  | Instr.Body _ ->
    let cmc = intern_mctx t callee.Instr.m_qname callee_ctx in
    record_call_edge t ~caller ~stmt ~callee:cmc;
    make_reachable t cmc;
    (* Receiver: flows as a single object, keeping obj-sensitivity sharp. *)
    (match (recv_obj, callee.Instr.m_params) with
    | Some o, this_param :: _ ->
      add_obj t (intern_node t (Nvar (cmc, this_param))) o
    | _ -> ());
    let key = (caller, stmt, cmc) in
    if not (Hashtbl.mem t.wired key) then begin
      Hashtbl.replace t.wired key ();
      (* Non-receiver arguments and the return value. *)
      let params = callee.Instr.m_params in
      let skip_recv = recv_obj <> None in
      let rec wire_args ps as_ first =
        match (ps, as_) with
        | [], _ | _, [] -> ()
        | p :: ps', a :: as_' ->
          if not (first && skip_recv) then begin
            if is_ref_var callee p && is_ref_var caller_meth a then
              add_edge t
                (intern_node t (Nvar (caller, a)))
                (intern_node t (Nvar (cmc, p)))
          end;
          wire_args ps' as_' false
      in
      wire_args params args true;
      match lhs with
      | Some x
        when is_ref_var caller_meth x
             && Types.is_reference callee.Instr.m_ret_ty ->
        add_edge t (intern_node t (Nret cmc)) (intern_node t (Nvar (caller, x)))
      | _ -> ()
    end

(* --- solving -------------------------------------------------------- *)

let solve (t : t) : unit =
  while t.ring_len > 0 || t.lcd_pending <> [] do
    (* Collapses run only here, between pops: no constraint list is
       being iterated, no drained delta is in flight. *)
    process_pending_lcd t;
    if t.ring_len > 0 then begin
      let n = t.ring.(t.head) in
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.ring_len <- t.ring_len - 1;
      Bits.remove t.queued n;
      (* Stale entries (node merged away since being queued) are skipped:
         the merge folded their delta into the rep and enqueued it. *)
      if find t n = n && not (Bits.is_empty t.delta.(n)) then begin
        incr t.obs_iters;
        t.obs_constraints := !(t.obs_constraints) + t.deg.(n);
        (* Drain the accumulated delta by swapping in the spare buffer:
           constraints fired below may re-enqueue [n] with new bits. *)
        let d = t.delta.(n) in
        t.delta.(n) <- t.spare;
        t.spare <- d;
        List.iter
          (fun (dst, filter) ->
            let rd = find t dst in
            if rd <> n then
              match filter with
              | None -> propagate_into t ~src_bits:d ~rd ~lcd_src:(Some n)
              | Some ty -> propagate_filtered t ~src_bits:d ~ty ~rd)
          t.succs.(n);
        List.iter
          (fun (field, dst) ->
            Bits.iter
              (fun o -> add_edge t (intern_node t (Nfield (o, field))) dst)
              d)
          t.loads.(n);
        List.iter
          (fun (field, src) ->
            Bits.iter
              (fun o -> add_edge t src (intern_node t (Nfield (o, field))))
              d)
          t.stores.(n);
        List.iter
          (fun disp -> Bits.iter (fun o -> process_dispatch t disp o) d)
          t.dispatches.(n);
        Bits.clear t.spare
      end
    end
  done

(* --- entry points --------------------------------------------------- *)

let analyze_uninstrumented ~opts (p : Program.t) : result =
  let t =
    { p;
      opts;
      ctxs = Context.create ();
      mctxs =
        Array.make 64
          { mi_mq = { Instr.mq_class = ""; mq_name = "" };
            mi_ctx = Context.Cnone };
      num_mctxs = 0;
      mctx_intern = Hashtbl.create 64;
      processed = Array.make 64 false;
      pv = Array.make 64 [];
      pv_on = true;
      obj_mc = Array.make 64 (-1);
      node_descs = Array.make 256 (Nstatic ("", ""));
      num_nodes = 0;
      node_intern = Hashtbl.create 256;
      pts = Array.make 256 dummy_bits;
      delta = Array.make 256 dummy_bits;
      parent = Array.make 256 0;
      rank = Array.make 256 0;
      succs = Array.make 256 [];
      succ_seen = Array.make 256 dummy_bits;
      loads = Array.make 256 [];
      stores = Array.make 256 [];
      dispatches = Array.make 256 [];
      deg = Array.make 256 0;
      call_edges = Hashtbl.create 256;
      intr_intern = Hashtbl.create 16;
      intrinsic_edges = Hashtbl.create 64;
      wired = Hashtbl.create 256;
      ring = Array.make 1024 0;
      head = 0;
      tail = 0;
      ring_len = 0;
      queued = Bits.create ~capacity:1024 ();
      lcd_pending = [];
      lcd_done = Hashtbl.create 64;
      lcd_fuel = lcd_fuel_init;
      lcd_mark = Array.make 256 0;
      lcd_stamp = 0;
      obs_pts_objs = Slice_obs.counter_cell c_pts_objs;
      obs_diff_hits = Slice_obs.counter_cell c_diff_prop_hits;
      obs_edges = Slice_obs.counter_cell c_edges;
      obs_iters = Slice_obs.counter_cell c_worklist_iterations;
      obs_constraints = Slice_obs.counter_cell c_constraints;
      obs_cycles = Slice_obs.counter_cell c_cycles_collapsed;
      obs_lcd = Slice_obs.counter_cell c_lcd_runs;
      spare = Bits.create ~capacity:64 ();
      fscratch = Bits.create ~capacity:64 ();
      meth_index = Hashtbl.create 1;
      meth_index_stamp = -1 }
  in
  let entry_mq = Program.entry_method p in
  (match Program.find_method p entry_mq with
  | None -> ()
  | Some main ->
    let emc = intern_mctx t entry_mq Context.Cnone in
    make_reachable t emc;
    (* main's String[] argument: synthetic array of synthetic strings *)
    (match main.Instr.m_params with
    | [ pv ] when is_ref_var main pv ->
      let arr =
        Context.intern_obj t.ctxs ~site:(-1)
          ~cls:(Context.Aarray (Types.Tclass Types.string_class))
          ~ctx:Context.Cnone
      in
      let str =
        Context.intern_obj t.ctxs ~site:(-2) ~cls:Context.Astring
          ~ctx:Context.Cnone
      in
      add_obj t (intern_node t (Nvar (emc, pv))) arr;
      add_obj t (intern_node t (Nfield (arr, elem_field))) str
    | _ -> ()));
  Slice_obs.span "pta.solve" (fun () -> solve t);
  t

let analyze ?(opts = default_opts) (p : Program.t) : result =
  Slice_obs.span "pta" (fun () -> analyze_uninstrumented ~opts p)

(* --- conversion from the reference solver --------------------------- *)

let bits_of_objset (s : ObjSet.t) : Bits.t =
  let b = Bits.create ~capacity:64 () in
  ObjSet.iter (fun o -> ignore (Bits.add b o)) s;
  b

let bits_of_list (l : int list) : Bits.t =
  let b = Bits.create ~capacity:64 () in
  List.iter (fun i -> ignore (Bits.add b i)) l;
  b

let of_reference (r : Reference.result) : result =
  let cap = max 1 (Array.length r.Reference.node_descs) in
  let n = r.Reference.num_nodes in
  let t =
    { p = r.Reference.p;
      opts = r.Reference.opts;
      ctxs = r.Reference.ctxs;
      mctxs = Array.copy r.Reference.mctxs;
      num_mctxs = r.Reference.num_mctxs;
      mctx_intern =
        (* rebuild: the reference solver keys on the printed qname, the
           main solver on the qname record itself. *)
        (let h = Hashtbl.create (max 16 r.Reference.num_mctxs) in
         for i = 0 to r.Reference.num_mctxs - 1 do
           let mi = r.Reference.mctxs.(i) in
           Hashtbl.replace h (mi.mi_mq, mi.mi_ctx) i
         done;
         h);
      processed = Array.copy r.Reference.processed;
      pv = Array.make (max 1 (Array.length r.Reference.mctxs)) [];
      pv_on = false;
      obj_mc = Array.make 1 (-1);
      node_descs = Array.copy r.Reference.node_descs;
      num_nodes = n;
      node_intern = Hashtbl.copy r.Reference.node_intern;
      pts =
        Array.init cap (fun i ->
            if i < n then bits_of_objset r.Reference.pts.(i)
            else Bits.create ~capacity:1 ());
      delta = Array.init cap (fun _ -> Bits.create ~capacity:1 ());
      parent = Array.init cap (fun i -> i);
      rank = Array.make cap 0;
      succs = Array.copy r.Reference.succs;
      succ_seen =
        Array.init cap (fun i ->
            if i < n then bits_of_list (List.map fst r.Reference.succs.(i))
            else Bits.create ~capacity:1 ());
      loads = Array.copy r.Reference.loads;
      stores = Array.copy r.Reference.stores;
      dispatches = Array.copy r.Reference.dispatches;
      deg = Array.make cap 0;
      call_edges =
        (let h = Hashtbl.create (max 16 (Hashtbl.length r.Reference.call_edges)) in
         Hashtbl.iter
           (fun k cell ->
             Hashtbl.replace h k
               { cs_seen = bits_of_list !cell; cs_list = !cell })
           r.Reference.call_edges;
         h);
      intr_intern = Hashtbl.create 16;
      intrinsic_edges = Hashtbl.create 64;
      wired = Hashtbl.copy r.Reference.wired;
      ring = Array.make 1 0;
      head = 0;
      tail = 0;
      ring_len = 0;
      queued = Bits.create ~capacity:1 ();
      lcd_pending = [];
      lcd_done = Hashtbl.create 1;
      lcd_fuel = 0;
      lcd_mark = Array.make cap 0;
      lcd_stamp = 0;
      obs_pts_objs = Slice_obs.counter_cell c_pts_objs;
      obs_diff_hits = Slice_obs.counter_cell c_diff_prop_hits;
      obs_edges = Slice_obs.counter_cell c_edges;
      obs_iters = Slice_obs.counter_cell c_worklist_iterations;
      obs_constraints = Slice_obs.counter_cell c_constraints;
      obs_cycles = Slice_obs.counter_cell c_cycles_collapsed;
      obs_lcd = Slice_obs.counter_cell c_lcd_runs;
      spare = Bits.create ~capacity:1 ();
      fscratch = Bits.create ~capacity:1 ();
      meth_index = Hashtbl.create 1;
      meth_index_stamp = -1 }
  in
  Hashtbl.iter
    (fun k cell ->
      let ids = List.map (intr_id t) !cell in
      Hashtbl.replace t.intrinsic_edges k
        { is_seen = bits_of_list ids; is_list = !cell })
    r.Reference.intrinsic_edges;
  t

(* --- queries -------------------------------------------------------- *)

let contexts (t : result) : Context.t = t.ctxs

let method_contexts (t : result) : (int * Instr.method_qname * Context.ctx) list =
  let out = ref [] in
  for i = t.num_mctxs - 1 downto 0 do
    if t.processed.(i) then
      out := (i, t.mctxs.(i).mi_mq, t.mctxs.(i).mi_ctx) :: !out
  done;
  !out

let mctx_info (t : result) (mc : int) : Instr.method_qname * Context.ctx =
  (t.mctxs.(mc).mi_mq, t.mctxs.(mc).mi_ctx)

(* Memoized method -> mctx list index (satellite): built once on first
   query after [solve] and reused; [meth_index_stamp] guards against a
   stale index if contexts were somehow added since. *)
let mctxs_of_method (t : result) (mq : Instr.method_qname) : int list =
  if t.meth_index_stamp <> t.num_mctxs then begin
    let h = Hashtbl.create (max 16 t.num_mctxs) in
    for i = t.num_mctxs - 1 downto 0 do
      if t.processed.(i) then begin
        let k = t.mctxs.(i).mi_mq in
        let prev = Option.value (Hashtbl.find_opt h k) ~default:[] in
        Hashtbl.replace h k (i :: prev)
      end
    done;
    t.meth_index <- h;
    t.meth_index_stamp <- t.num_mctxs
  end;
  Option.value (Hashtbl.find_opt t.meth_index mq) ~default:[]

let reachable_methods (t : result) : Instr.method_qname list =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, mq, _) -> Hashtbl.replace seen (Instr.method_qname_to_string mq) mq)
    (method_contexts t);
  List.sort Instr.compare_method_qname
    (Hashtbl.fold (fun _ mq acc -> mq :: acc) seen [])

(* All queries go through [find]: after cycle collapsing, a node's
   points-to set lives at its class representative. *)
let pts_of_node (t : result) (d : node_desc) : ObjSet.t =
  match Hashtbl.find_opt t.node_intern d with
  | Some id ->
    Bits.fold (fun o acc -> ObjSet.add o acc) t.pts.(find t id) ObjSet.empty
  | None -> ObjSet.empty

let pts_of_var (t : result) ~(mctx : int) (v : Instr.var) : ObjSet.t =
  pts_of_node t (Nvar (mctx, v))

(* Allocation-free variant for the SDG's heap-indexing pass and the
   mod-ref direct pass.  Uses the read-only find so worker domains can
   query a finished result concurrently (after
   [prepare_concurrent_reads] the walk is O(1) anyway). *)
let pts_iter_var (t : result) ~(mctx : int) (v : Instr.var) (f : int -> unit) :
    unit =
  match Hashtbl.find_opt t.node_intern (Nvar (mctx, v)) with
  | Some id -> Bits.iter f t.pts.(find_ro t id)
  | None -> ()

(* Context-insensitive projection: union over all contexts of the method. *)
let pts_of_var_ci (t : result) (mq : Instr.method_qname) (v : Instr.var) :
    ObjSet.t =
  List.fold_left
    (fun acc mc -> ObjSet.union acc (pts_of_var t ~mctx:mc v))
    ObjSet.empty (mctxs_of_method t mq)

let pts_of_field (t : result) ~(obj : int) ~(field : string) : ObjSet.t =
  pts_of_node t (Nfield (obj, field))

let pts_of_static (t : result) (c : Types.class_name) (f : Types.field_name) :
    ObjSet.t =
  pts_of_node t (Nstatic (c, f))

let call_targets (t : result) ~(mctx : int) ~(stmt : Instr.stmt_id) : int list =
  match Hashtbl.find_opt t.call_edges (mctx, stmt) with
  | Some cell -> cell.cs_list
  | None -> []

let intrinsic_targets (t : result) ~(mctx : int) ~(stmt : Instr.stmt_id) :
    Instr.method_qname list =
  match Hashtbl.find_opt t.intrinsic_edges (mctx, stmt) with
  | Some cell -> cell.is_list
  | None -> []

(* Call targets, context-insensitively: method names only. *)
let call_targets_ci (t : result) (mq : Instr.method_qname)
    ~(stmt : Instr.stmt_id) : Instr.method_qname list =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun mc ->
      List.iter
        (fun cmc ->
          let mq', _ = mctx_info t cmc in
          Hashtbl.replace seen (Instr.method_qname_to_string mq') mq')
        (call_targets t ~mctx:mc ~stmt))
    (mctxs_of_method t mq);
  Hashtbl.fold (fun _ m acc -> m :: acc) seen []

(* Intrinsic targets, context-insensitively. *)
let intrinsic_targets_ci (t : result) (mq : Instr.method_qname)
    ~(stmt : Instr.stmt_id) : Instr.method_qname list =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun mc ->
      List.iter
        (fun imq -> Hashtbl.replace seen (Instr.method_qname_to_string imq) imq)
        (intrinsic_targets t ~mctx:mc ~stmt))
    (mctxs_of_method t mq);
  Hashtbl.fold (fun _ m acc -> m :: acc) seen []

let num_call_graph_nodes (t : result) : int =
  List.length (method_contexts t)

let num_objects (t : result) : int = Context.num_objs t.ctxs

(* Verifiable casts: can pointer analysis prove the cast never fails?  The
   tough-cast experiment (section 6.3) slices from casts where this check
   fails. *)
let cast_verified (t : result) (mq : Instr.method_qname) (cast : Instr.instr) :
    bool =
  match cast.Instr.i_kind with
  | Instr.Cast (_, ty, y) ->
    let pts = pts_of_var_ci t mq y in
    ObjSet.for_all (fun o -> obj_passes t o ty) pts
  | _ -> invalid_arg "Andersen.cast_verified: not a cast"

(* --- parity dumps --------------------------------------------------- *)

let pts_dump (t : result) : (string * string list) list =
  build_pts_dump ~ctxs:t.ctxs
    ~mctx_of:(fun mc -> mctx_info t mc)
    ~num_nodes:t.num_nodes
    ~desc_of:(fun i -> t.node_descs.(i))
    ~objs_of:(fun i -> Bits.elements t.pts.(find t i))

let call_graph_dump (t : result) : (string * string list) list =
  let mk caller stmt tag =
    let mq, c = mctx_info t caller in
    tag ^ mctx_key_str t.ctxs mq c ^ "#" ^ string_of_int stmt
  in
  let entries = ref [] in
  Hashtbl.iter
    (fun (caller, stmt) cell ->
      let callees =
        List.map
          (fun cmc ->
            let mq, c = mctx_info t cmc in
            mctx_key_str t.ctxs mq c)
          cell.cs_list
      in
      entries := (mk caller stmt "C:", List.sort compare callees) :: !entries)
    t.call_edges;
  Hashtbl.iter
    (fun (caller, stmt) cell ->
      let callees = List.map Instr.method_qname_to_string cell.is_list in
      entries := (mk caller stmt "I:", List.sort compare callees) :: !entries)
    t.intrinsic_edges;
  List.sort compare !entries

(* --- delta-native incremental re-solve ------------------------------- *)

type delta_stats = {
  ds_retracted_mctxs : int;
  ds_cone_nodes : int;
  ds_total_nodes : int;
  ds_replayed_mctxs : int;
}

(* Fall back to a fresh solve once delete-and-rederive would redo more
   than half the node universe (or half the reachable methods) anyway:
   past that point the warm start saves nothing and the bookkeeping is
   pure overhead. *)
let cone_node_limit_den = 2
let cone_mctx_limit_den = 2

let resolve_delta (t : t) ~(retracted : Instr.method_qname list)
    ~(added : Instr.method_qname list) :
    (delta_stats, [ `Cone_too_big | `No_provenance ]) Stdlib.result =
  (* [added] methods carry no old constraints to retract: their bodies
     already live in [t.p] and contribute constraints the moment the
     replayed call graph reaches them.  The list is accepted so callers
     state the full delta; only [retracted] drives the retraction. *)
  ignore (added : Instr.method_qname list);
  if not t.pv_on then Error `No_provenance
  else begin
    (* ---- plan (no mutation): dead method contexts + affected cone ---
       [dead] = every context whose old constraints must be dropped:
       the retracted methods' contexts, plus — iteratively — any context
       whose reachability can no longer be established without them.
       [cone] = representatives whose points-to sets may depend on a
       dead constraint, found by forward closure over the OLD rows:
       copy successors (which include every solve-derived edge), load
       targets, field nodes reachable through stores, and the wiring a
       suspect dispatch produced. *)
    let dead_mq = Hashtbl.create 8 in
    List.iter (fun mq -> Hashtbl.replace dead_mq mq ()) retracted;
    let dead = Bits.create ~capacity:(max 64 t.num_mctxs) () in
    for mc = 0 to t.num_mctxs - 1 do
      if t.processed.(mc) && Hashtbl.mem dead_mq t.mctxs.(mc).mi_mq then
        ignore (Bits.add dead mc)
    done;
    let entry_mc =
      Hashtbl.find_opt t.mctx_intern (Program.entry_method t.p, Context.Cnone)
    in
    let cone = Bits.create ~capacity:(max 256 t.num_nodes) () in
    let compute_cone () =
      Bits.clear cone;
      let wl = ref [] in
      let mark n =
        let r = find t n in
        if Bits.add cone r then wl := r :: !wl
      in
      let mark_intern desc =
        match Hashtbl.find_opt t.node_intern desc with
        | Some id -> mark id
        | None -> ()
      in
      for i = 0 to t.num_nodes - 1 do
        match t.node_descs.(i) with
        | Nvar (mc, _) | Nret mc -> if Bits.mem dead mc then mark i
        | Nfield (o, _) ->
          (* an object whose allocating context died can never be
             re-seeded (its site is gone); its field nodes die with it *)
          let owner = if o < Array.length t.obj_mc then t.obj_mc.(o) else -1 in
          if owner >= 0 && Bits.mem dead owner then mark i
        | Nstatic _ -> ()
      done;
      while !wl <> [] do
        match !wl with
        | [] -> ()
        | r :: rest ->
          wl := rest;
          List.iter (fun (dst, _) -> mark dst) t.succs.(r);
          List.iter (fun (_, dst) -> mark dst) t.loads.(r);
          List.iter
            (fun (f, _) ->
              Bits.iter (fun o -> mark_intern (Nfield (o, f))) t.pts.(r))
            t.stores.(r);
          List.iter
            (fun d ->
              (* a changed receiver can change dispatch outcomes: every
                 node the old wiring fed is suspect *)
              (match d.d_lhs with
              | Some x -> mark_intern (Nvar (d.d_caller, x))
              | None -> ());
              match Hashtbl.find_opt t.call_edges (d.d_caller, d.d_stmt) with
              | None -> ()
              | Some cell ->
                List.iter
                  (fun cmc ->
                    mark_intern (Nret cmc);
                    match Program.find_method t.p t.mctxs.(cmc).mi_mq with
                    | None -> ()
                    | Some callee ->
                      List.iter
                        (fun prm -> mark_intern (Nvar (cmc, prm)))
                        callee.Instr.m_params)
                  cell.cs_list)
            t.dispatches.(r)
      done
    in
    (* Reachability over the OLD call graph, trusting only edges whose
       caller survives and whose dispatch receiver (if any) is outside
       the cone.  Under-approximate on purpose: anything uncertain is
       treated as dead and re-derived by the replay if still wanted. *)
    let reach = Bits.create ~capacity:(max 64 t.num_mctxs) () in
    let compute_reach () =
      Bits.clear reach;
      let disp_recv = Hashtbl.create 64 in
      for r = 0 to t.num_nodes - 1 do
        List.iter
          (fun d -> Hashtbl.replace disp_recv (d.d_caller, d.d_stmt) r)
          t.dispatches.(r)
      done;
      let out = Hashtbl.create 64 in
      Hashtbl.iter
        (fun ((caller, _stmt) as key) cell ->
          let suspect =
            Bits.mem dead caller
            ||
            match Hashtbl.find_opt disp_recv key with
            | Some r -> Bits.mem cone (find t r)
            | None -> false
          in
          if not suspect then
            Hashtbl.replace out caller
              (cell.cs_list
              @ Option.value (Hashtbl.find_opt out caller) ~default:[]))
        t.call_edges;
      let wl = ref [] in
      let visit mc = if Bits.add reach mc then wl := mc :: !wl in
      (match entry_mc with Some e -> visit e | None -> ());
      while !wl <> [] do
        match !wl with
        | [] -> ()
        | mc :: rest ->
          wl := rest;
          if not (Bits.mem dead mc) then
            List.iter visit (Option.value (Hashtbl.find_opt out mc) ~default:[])
      done
    in
    let stable = ref false in
    while not !stable do
      compute_cone ();
      compute_reach ();
      let newly = ref [] in
      for mc = 0 to t.num_mctxs - 1 do
        if
          t.processed.(mc)
          && (not (Bits.mem dead mc))
          && not (Bits.mem reach mc)
        then newly := mc :: !newly
      done;
      if !newly = [] then stable := true
      else List.iter (fun mc -> ignore (Bits.add dead mc)) !newly
    done;
    let in_cone = Array.make (max 1 t.num_nodes) false in
    let cone_nodes = ref 0 in
    for n = 0 to t.num_nodes - 1 do
      if Bits.mem cone (find t n) then begin
        in_cone.(n) <- true;
        incr cone_nodes
      end
    done;
    let dead_count = Bits.cardinal dead in
    let processed_count = ref 0 in
    for mc = 0 to t.num_mctxs - 1 do
      if t.processed.(mc) then incr processed_count
    done;
    if
      !cone_nodes * cone_node_limit_den > t.num_nodes
      || dead_count * cone_mctx_limit_den > !processed_count
    then Error `Cone_too_big
    else begin
      (* ---- retract ------------------------------------------------- *)
      let dead_objs = ref [] in
      for o = 0 to Array.length t.obj_mc - 1 do
        if t.obj_mc.(o) >= 0 && Bits.mem dead t.obj_mc.(o) then begin
          dead_objs := o :: !dead_objs;
          t.obj_mc.(o) <- -1
        end
      done;
      for n = 0 to t.num_nodes - 1 do
        if in_cone.(n) then begin
          (* conservative split: the collapse may not survive retraction *)
          t.parent.(n) <- n;
          t.rank.(n) <- 0;
          Bits.clear t.pts.(n);
          Bits.clear t.delta.(n)
        end
        else if t.parent.(n) = n then
          List.iter
            (fun o ->
              Bits.remove t.pts.(n) o;
              Bits.remove t.delta.(n) o)
            !dead_objs;
        (* every row is re-derived by the replay *)
        t.succs.(n) <- [];
        t.loads.(n) <- [];
        t.stores.(n) <- [];
        t.dispatches.(n) <- [];
        t.deg.(n) <- 0;
        Bits.clear t.succ_seen.(n)
      done;
      Hashtbl.reset t.call_edges;
      Hashtbl.reset t.intrinsic_edges;
      Hashtbl.reset t.wired;
      t.lcd_pending <- [];
      Hashtbl.reset t.lcd_done;
      t.lcd_fuel <- lcd_fuel_init;
      t.head <- 0;
      t.tail <- 0;
      t.ring_len <- 0;
      Bits.clear t.queued;
      t.meth_index_stamp <- -1;
      let replayable = ref 0 in
      for mc = 0 to t.num_mctxs - 1 do
        if Bits.mem dead mc then t.pv.(mc) <- [];
        if t.processed.(mc) && (not (Bits.mem dead mc)) && t.pv.(mc) <> []
        then incr replayable;
        t.processed.(mc) <- false
      done;
      (* ---- re-derive: demand-driven replay from the entry ----------
         Surviving contexts replay their logs; retracted-but-reachable
         contexts re-walk their (new) bodies because their logs were
         dropped above.  Mirrors [analyze_uninstrumented]'s entry
         seeding so the synthetic argv objects stay identical. *)
      let entry_mq = Program.entry_method t.p in
      (match Program.find_method t.p entry_mq with
      | None -> ()
      | Some main ->
        let emc = intern_mctx t entry_mq Context.Cnone in
        make_reachable t emc;
        (match main.Instr.m_params with
        | [ pvar ] when is_ref_var main pvar ->
          let arr =
            Context.intern_obj t.ctxs ~site:(-1)
              ~cls:(Context.Aarray (Types.Tclass Types.string_class))
              ~ctx:Context.Cnone
          in
          let str =
            Context.intern_obj t.ctxs ~site:(-2) ~cls:Context.Astring
              ~ctx:Context.Cnone
          in
          add_obj t (intern_node t (Nvar (emc, pvar))) arr;
          add_obj t (intern_node t (Nfield (arr, elem_field))) str
        | _ -> ()));
      Slice_obs.span "pta.resolve_delta" (fun () -> solve t);
      Ok
        { ds_retracted_mctxs = dead_count;
          ds_cone_nodes = !cone_nodes;
          ds_total_nodes = t.num_nodes;
          ds_replayed_mctxs = !replayable }
    end
  end

(* --- incremental re-analysis support --------------------------------- *)

(* A canonical string of EXACTLY the facts [make_reachable] turns into
   constraints for one method body, plus the site list those constraints
   key on, in [iter_instrs] order.

   Two bodies with equal summaries generate identical constraint systems
   up to statement-id renaming: same Nvar node set (variable ints are
   part of the summary), same copy/load/store/dispatch structure, and a
   positional 1:1 correspondence of allocation/call sites.  That is the
   soundness condition for patching a solved analysis in place after a
   method is re-lowered ([rekey_sites]) instead of re-solving.  The
   summary deliberately EXCLUDES statement ids, source locations, and
   constants with no points-to effect (int/bool/string VALUES, non-ref
   operands), so pure value edits keep the summary stable. *)
let method_summary_sites (m : Instr.meth) : string * Instr.stmt_id list =
  let buf = Buffer.create 256 in
  let sites = ref [] in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match m.Instr.m_body with
  | Instr.Intrinsic _ | Instr.Abstract -> Buffer.add_string buf "nobody"
  | Instr.Body _ ->
    let refc v = if is_ref_var m v then 'r' else 'p' in
    addf "sig:%s|%s|"
      (String.concat ","
         (List.map
            (fun v ->
              Printf.sprintf "%d%c:%s" v (refc v)
                (Types.ty_to_string (Instr.var_info m v).Instr.vi_ty))
            m.Instr.m_params))
      (Types.ty_to_string m.Instr.m_ret_ty);
    Instr.iter_instrs m (fun lbl i ->
        let site () = sites := i.Instr.i_id :: !sites in
        match i.Instr.i_kind with
        | Instr.Const (x, Types.Cstr _) when is_ref_var m x ->
          site ();
          addf "S%d:%d;" lbl x
        | Instr.Const _ -> ()
        | Instr.Binop (x, Types.Concat, _, _) when is_ref_var m x ->
          site ();
          addf "K%d:%d;" lbl x
        | Instr.New (x, c) ->
          site ();
          addf "N%d:%d:%s;" lbl x c
        | Instr.New_array (x, elem, _) ->
          site ();
          addf "A%d:%d:%s;" lbl x (Types.ty_to_string elem)
        | Instr.Move (x, y) when is_ref_var m x && is_ref_var m y ->
          addf "M%d:%d:%d;" lbl x y
        | Instr.Move _ -> ()
        | Instr.Cast (x, ty, y) when is_ref_var m x && is_ref_var m y ->
          addf "C%d:%d:%s:%d;" lbl x (Types.ty_to_string ty) y
        | Instr.Cast _ -> ()
        | Instr.Phi (x, ins) when is_ref_var m x ->
          addf "P%d:%d:%s;" lbl x
            (String.concat ","
               (List.map (fun (_, y) -> string_of_int y) ins))
        | Instr.Phi _ -> ()
        | Instr.Load (x, y, f) when is_ref_var m x ->
          addf "L%d:%d:%d:%s;" lbl x y f
        | Instr.Load _ -> ()
        | Instr.Store (x, f, y) when is_ref_var m y ->
          addf "T%d:%d:%s:%d;" lbl x f y
        | Instr.Store _ -> ()
        | Instr.Array_load (x, y, _) when is_ref_var m x ->
          addf "l%d:%d:%d;" lbl x y
        | Instr.Array_load _ -> ()
        | Instr.Array_store (a, _, x) when is_ref_var m x ->
          addf "t%d:%d:%d;" lbl a x
        | Instr.Array_store _ -> ()
        | Instr.Static_load (x, c, f) when is_ref_var m x ->
          addf "G%d:%d:%s.%s;" lbl x c f
        | Instr.Static_load _ -> ()
        | Instr.Static_store (c, f, y) when is_ref_var m y ->
          addf "g%d:%s.%s:%d;" lbl c f y
        | Instr.Static_store _ -> ()
        | Instr.Call { lhs; kind; args } ->
          (* EVERY call is a site: call-graph edges, wiring dedup, and
             intrinsic allocations all key on the call's statement id. *)
          site ();
          let kstr =
            match kind with
            | Instr.Virtual n -> "v" ^ n
            | Instr.Static mq -> "s" ^ Instr.method_qname_to_string mq
            | Instr.Special mq -> "p" ^ Instr.method_qname_to_string mq
          in
          addf "X%d:%s(%s)%s;" lbl kstr
            (String.concat ","
               (List.map (fun a -> Printf.sprintf "%d%c" a (refc a)) args))
            (match lhs with
            | None -> ""
            | Some x -> Printf.sprintf "=%d%c" x (refc x))
        | Instr.Binop _ | Instr.Unop _ | Instr.Instance_of _
        | Instr.Array_length _ | Instr.Nop -> ());
    Instr.iter_terms m (fun lbl term ->
        match term.Instr.t_kind with
        | Instr.Return (Some v) when is_ref_var m v -> addf "R%d:%d;" lbl v
        | Instr.Return _ | Instr.Goto _ | Instr.If _ | Instr.Throw _ -> ()));
  (Buffer.contents buf, List.rev !sites)

(* Enumerate resolved call edges: used by the SDG patch's control pass
   to recover a re-lowered method's entry callers without re-running
   dispatch. *)
let iter_call_sites (t : result)
    (f : caller:int -> stmt:Instr.stmt_id -> callees:int list -> unit) : unit =
  Hashtbl.iter
    (fun (caller, stmt) cell -> f ~caller ~stmt ~callees:cell.cs_list)
    t.call_edges

(* Move every statement-id-keyed structure of a SOLVED analysis onto a
   re-lowered method's fresh ids.  Sound only when the old and new body
   have equal [method_summary_sites] summaries and [remap] is the
   positional zip of their site lists.  Collect-then-apply everywhere:
   statement ids are globally unique and never reused, so the old and
   new key spaces cannot collide. *)
let rekey_sites (t : result) (remap : Instr.stmt_id -> Instr.stmt_id option) :
    unit =
  let moves = ref [] in
  Hashtbl.iter
    (fun ((caller, stmt) as k) cell ->
      match remap stmt with
      | Some s' when s' <> stmt -> moves := (k, (caller, s'), cell) :: !moves
      | Some _ | None -> ())
    t.call_edges;
  List.iter
    (fun (ok, nk, cell) ->
      Hashtbl.remove t.call_edges ok;
      Hashtbl.replace t.call_edges nk cell)
    !moves;
  let imoves = ref [] in
  Hashtbl.iter
    (fun ((caller, stmt) as k) cell ->
      match remap stmt with
      | Some s' when s' <> stmt -> imoves := (k, (caller, s'), cell) :: !imoves
      | Some _ | None -> ())
    t.intrinsic_edges;
  List.iter
    (fun (ok, nk, cell) ->
      Hashtbl.remove t.intrinsic_edges ok;
      Hashtbl.replace t.intrinsic_edges nk cell)
    !imoves;
  let wmoves = ref [] in
  Hashtbl.iter
    (fun ((caller, stmt, cmc) as k) () ->
      match remap stmt with
      | Some s' when s' <> stmt -> wmoves := (k, (caller, s', cmc)) :: !wmoves
      | Some _ | None -> ())
    t.wired;
  List.iter
    (fun (ok, nk) ->
      Hashtbl.remove t.wired ok;
      Hashtbl.replace t.wired nk ())
    !wmoves;
  for i = 0 to t.num_nodes - 1 do
    match t.dispatches.(i) with
    | [] -> ()
    | ds ->
      t.dispatches.(i) <-
        List.map
          (fun d ->
            match remap d.d_stmt with
            | Some s' when s' <> d.d_stmt -> { d with d_stmt = s' }
            | Some _ | None -> d)
          ds
  done;
  (* The provenance log stores call sites too: move them with the rest,
     or a later [resolve_delta] would replay retired statement ids. *)
  if t.pv_on then
    for mc = 0 to t.num_mctxs - 1 do
      match t.pv.(mc) with
      | [] -> ()
      | ops ->
        t.pv.(mc) <-
          List.map
            (fun op ->
              match op with
              | Pcall d -> (
                match remap d.d_stmt with
                | Some s' when s' <> d.d_stmt -> Pcall { d with d_stmt = s' }
                | Some _ | None -> op)
              | Pseed _ | Pedge _ | Pload _ | Pstore _ -> op)
            ops
    done;
  Context.rekey_sites t.ctxs remap

(* Location-keyed parity dumps: canonical across a patched analysis and
   a fresh rebuild, whose statement NUMBERINGS differ but whose source
   locations coincide.  [site_label] must be injective enough to keep
   the dump deterministic (the engine supplies "file:line:col", with
   negative synthetic sites labelled verbatim). *)
let pts_dump_loc ~(site_label : int -> string) (t : result) :
    (string * string list) list =
  build_pts_dump_site ~site:site_label ~ctxs:t.ctxs
    ~mctx_of:(fun mc -> mctx_info t mc)
    ~num_nodes:t.num_nodes
    ~desc_of:(fun i -> t.node_descs.(i))
    ~objs_of:(fun i -> Bits.elements t.pts.(find t i))

let call_graph_dump_loc ~(site_label : int -> string) (t : result) :
    (string * string list) list =
  let mk caller stmt tag =
    let mq, c = mctx_info t caller in
    tag ^ mctx_key_str_site ~site:site_label t.ctxs mq c ^ "#"
    ^ site_label stmt
  in
  let entries = ref [] in
  Hashtbl.iter
    (fun (caller, stmt) cell ->
      let callees =
        List.map
          (fun cmc ->
            let mq, c = mctx_info t cmc in
            mctx_key_str_site ~site:site_label t.ctxs mq c)
          cell.cs_list
      in
      entries := (mk caller stmt "C:", List.sort compare callees) :: !entries)
    t.call_edges;
  Hashtbl.iter
    (fun (caller, stmt) cell ->
      let callees = List.map Instr.method_qname_to_string cell.is_list in
      entries := (mk caller stmt "I:", List.sort compare callees) :: !entries)
    t.intrinsic_edges;
  List.sort compare !entries
