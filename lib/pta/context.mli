(** Abstract objects and analysis contexts for the points-to analysis.

    The heap abstraction is allocation sites, optionally cloned by the
    receiver object of the enclosing method (Milanova-style object
    sensitivity [16], applied selectively to container classes, as the
    paper's section 6.1 prescribes).  Contexts and abstract objects are
    mutually recursive, so both are interned into integer ids. *)

open Slice_ir

(** What an allocation site creates. *)
type alloc_class =
  | Aclass of Types.class_name
  | Aarray of Types.ty            (** element type *)
  | Astring                       (** string literals / string intrinsics *)
  | Aextern of string             (** synthetic roots, e.g. main's args *)

type ctx =
  | Cnone
  | Crecv of int                  (** receiver abstract-object id *)

type obj_info = {
  oi_id : int;
  oi_site : Instr.stmt_id;        (** negative for synthetic roots *)
  oi_cls : alloc_class;
  oi_ctx : ctx;                   (** heap context of the allocation *)
}

type t

val create : unit -> t
val obj : t -> int -> obj_info
val num_objs : t -> int

(** Intern the abstract object for (site, heap context). *)
val intern_obj : t -> site:Instr.stmt_id -> cls:alloc_class -> ctx:ctx -> int

(** Re-key allocation sites after an incremental re-lower (changed
    methods receive fresh statement ids; [remap old = Some new] moves a
    site, [None] keeps it).  Object ids are stable; the (site, ctx)
    intern table is rebuilt.  See {!Andersen.rekey_sites}. *)
val rekey_sites : t -> (Instr.stmt_id -> Instr.stmt_id option) -> unit

(** Nesting depth of receiver contexts (containers inside containers). *)
val ctx_depth : t -> ctx -> int

(** The class a virtual call dispatches on, for an abstract object. *)
val dispatch_class : alloc_class -> Types.class_name option

val pp_ctx : t -> Format.formatter -> ctx -> unit
val pp_obj : t -> Format.formatter -> int -> unit
