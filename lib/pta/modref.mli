(** Interprocedural mod-ref analysis [24] over the points-to result: for
    each method context, the abstract heap locations it (transitively) may
    write and read.  The context-sensitive slicer uses these sets to
    introduce heap parameters and returns on each procedure (paper,
    section 5.3). *)

open Slice_ir

type loc =
  | Lfield of int * string  (** abstract object, field ($elem for arrays) *)
  | Lstatic of Types.class_name * Types.field_name
  | Larray_len of int       (** length of an abstract array *)

val compare_loc : loc -> loc -> int

module LocSet : Set.S with type elt = loc

type t

(** Direct sets per method context, then transitive closure over the call
    graph to a fixpoint.  [jobs] shards the direct pass across that many
    OCaml domains (default: up to 4 when
    [Domain.recommended_domain_count () > 1], else sequential); shards
    fill disjoint slices of one per-context result array, so the tables
    — and everything downstream — are identical at every job count.
    The closure phase stays sequential (it is a small fraction of the
    wall). *)
val compute : ?jobs:int -> Program.t -> Andersen.result -> t

val mod_of : t -> int -> LocSet.t
val ref_of : t -> int -> LocSet.t

(** Context-insensitive projections (union over a method's contexts). *)
val mod_of_method :
  Program.t -> Andersen.result -> t -> Instr.method_qname -> LocSet.t

val ref_of_method :
  Program.t -> Andersen.result -> t -> Instr.method_qname -> LocSet.t
