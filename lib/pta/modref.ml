(* Interprocedural mod-ref analysis [24] over the points-to result: for each
   method context, the set of abstract heap locations it (transitively) may
   write and read.  The context-sensitive slicer uses these sets to
   introduce heap parameters and returns on each procedure (paper,
   section 5.3). *)

open Slice_ir

type loc =
  | Lfield of int * string                      (* abstract object, field *)
  | Lstatic of Types.class_name * Types.field_name
  | Larray_len of int                           (* length of abstract array *)

let compare_loc = compare

module LocSet = Set.Make (struct
  type t = loc

  let compare = compare_loc
end)

type t = {
  mods : (int, LocSet.t) Hashtbl.t;             (* mctx -> transitive mod *)
  refs : (int, LocSet.t) Hashtbl.t;
}

let mod_of (t : t) (mc : int) : LocSet.t =
  Option.value ~default:LocSet.empty (Hashtbl.find_opt t.mods mc)

let ref_of (t : t) (mc : int) : LocSet.t =
  Option.value ~default:LocSet.empty (Hashtbl.find_opt t.refs mc)

(* Direct mod/ref sets of one method context: the per-statement pass
   each shard of the parallel direct phase runs.  Reads the program and
   the finished points-to result only through race-free paths
   ([Hashtbl] lookups, [pts_iter_var] on a prepared result), so worker
   domains can run it concurrently. *)
let direct_sets (p : Program.t) (r : Andersen.result) (mc : int)
    (mq : Instr.method_qname) : LocSet.t * LocSet.t =
  let m = Program.find_method_exn p mq in
  let dm = ref LocSet.empty and dr = ref LocSet.empty in
  if Instr.has_body m then
    Instr.iter_instrs m (fun _ i ->
        match i.Instr.i_kind with
        | Instr.Store (x, f, _) ->
          Andersen.pts_iter_var r ~mctx:mc x (fun o ->
              dm := LocSet.add (Lfield (o, f)) !dm)
        | Instr.Load (_, y, f) ->
          Andersen.pts_iter_var r ~mctx:mc y (fun o ->
              dr := LocSet.add (Lfield (o, f)) !dr)
        | Instr.Array_store (a, _, _) ->
          Andersen.pts_iter_var r ~mctx:mc a (fun o ->
              dm := LocSet.add (Lfield (o, Andersen.elem_field)) !dm)
        | Instr.Array_load (_, a, _) ->
          Andersen.pts_iter_var r ~mctx:mc a (fun o ->
              dr := LocSet.add (Lfield (o, Andersen.elem_field)) !dr)
        | Instr.New_array (x, _, _) ->
          Andersen.pts_iter_var r ~mctx:mc x (fun o ->
              dm := LocSet.add (Larray_len o) !dm)
        | Instr.Array_length (_, a) ->
          Andersen.pts_iter_var r ~mctx:mc a (fun o ->
              dr := LocSet.add (Larray_len o) !dr)
        | Instr.Static_store (c, f, _) -> dm := LocSet.add (Lstatic (c, f)) !dm
        | Instr.Static_load (_, c, f) -> dr := LocSet.add (Lstatic (c, f)) !dr
        | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Unop _
        | Instr.New _ | Instr.Call _ | Instr.Cast _ | Instr.Instance_of _
        | Instr.Phi _ | Instr.Nop -> ());
  (!dm, !dr)

let auto_jobs () =
  let r = Domain.recommended_domain_count () in
  if r > 1 then min r 4 else 1

let compute ?jobs (p : Program.t) (r : Andersen.result) : t =
  let jobs = match jobs with Some j -> max 1 j | None -> auto_jobs () in
  let direct_mods = Hashtbl.create 64 in
  let direct_refs = Hashtbl.create 64 in
  let mcs = Andersen.method_contexts r in
  let mcs_arr = Array.of_list mcs in
  let n = Array.length mcs_arr in
  (* Direct pass, sharded by contiguous context ranges.  Each worker
     fills its slice of one result array — no shared mutable state —
     and the parent stores the slices back in context order, so the
     tables are identical at every job count. *)
  let direct = Array.make n (LocSet.empty, LocSet.empty) in
  let run_range lo hi =
    for k = lo to hi - 1 do
      let mc, mq, _ = mcs_arr.(k) in
      direct.(k) <- direct_sets p r mc mq
    done
  in
  if jobs > 1 && n >= 2 * jobs then begin
    Andersen.prepare_concurrent_reads r;
    let shards = min jobs n in
    let chunk = (n + shards - 1) / shards in
    let workers =
      Array.init shards (fun s ->
          let lo = s * chunk and hi = min n ((s + 1) * chunk) in
          Domain.spawn (fun () ->
              run_range lo hi;
              Slice_obs.snapshot ()))
    in
    Array.iter
      (fun w -> Slice_obs.merge_snapshot (Domain.join w))
      workers
  end
  else run_range 0 n;
  Array.iteri
    (fun k (dm, dr) ->
      let mc, _, _ = mcs_arr.(k) in
      Hashtbl.replace direct_mods mc dm;
      Hashtbl.replace direct_refs mc dr)
    direct;
  (* Transitive closure over the call graph, to fixpoint. *)
  let t = { mods = Hashtbl.copy direct_mods; refs = Hashtbl.copy direct_refs } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (mc, mq, _) ->
        let m = Program.find_method_exn p mq in
        if Instr.has_body m then
          Instr.iter_instrs m (fun _ i ->
              match i.Instr.i_kind with
              | Instr.Call _ ->
                List.iter
                  (fun cmc ->
                    let extend tbl =
                      let mine =
                        Option.value ~default:LocSet.empty (Hashtbl.find_opt tbl mc)
                      in
                      let theirs =
                        Option.value ~default:LocSet.empty (Hashtbl.find_opt tbl cmc)
                      in
                      if not (LocSet.subset theirs mine) then begin
                        Hashtbl.replace tbl mc (LocSet.union mine theirs);
                        changed := true
                      end
                    in
                    extend t.mods;
                    extend t.refs)
                  (Andersen.call_targets r ~mctx:mc ~stmt:i.Instr.i_id)
              | _ -> ()))
      mcs
  done;
  t

(* Context-insensitive projections (union over a method's contexts). *)
let mod_of_method (p : Program.t) (r : Andersen.result) (t : t)
    (mq : Instr.method_qname) : LocSet.t =
  ignore p;
  List.fold_left
    (fun acc mc -> LocSet.union acc (mod_of t mc))
    LocSet.empty
    (Andersen.mctxs_of_method r mq)

let ref_of_method (p : Program.t) (r : Andersen.result) (t : t)
    (mq : Instr.method_qname) : LocSet.t =
  ignore p;
  List.fold_left
    (fun acc mc -> LocSet.union acc (ref_of t mc))
    LocSet.empty
    (Andersen.mctxs_of_method r mq)
