(** Andersen-style (subset-based) points-to analysis with on-the-fly call
    graph construction, a field-sensitive heap, and optional
    object-sensitive cloning of container-class methods and their
    allocations — the analysis configuration of the paper's section 6.1
    ("a variant of Andersen's analysis with on-the-fly call graph
    construction, with fully object-sensitive cloning for objects of key
    collections classes").

    The main solver is a difference-propagation worklist over an
    interned node universe with a bitset data plane: points-to sets and
    accumulated per-node deltas are growable dense bitsets
    ([Slice_util.Bits]), the worklist is an entry-unique FIFO int ring,
    and unfiltered copy cycles are collapsed online (union-find with
    lazy cycle detection), so every node of a copy cycle shares one
    points-to set.  Complex constraints (field loads/stores, virtual
    dispatch) are attached to base-pointer nodes and processed as their
    points-to sets grow.

    The original list/tree solver is preserved verbatim as [Reference]
    (telemetry-free oracle, same role as [Slicer.Reference]);
    [of_reference] lifts its result into the main representation so the
    full pipeline can run against either solver for parity checks and
    A/B benchmarks. *)

open Slice_ir

module ObjSet : Set.S with type elt = int

type opts = {
  obj_sens_containers : bool;
      (** clone container-class methods per receiver object *)
  max_ctx_depth : int;
      (** cap on nested receiver contexts (containers inside containers) *)
}

val default_opts : opts
val no_obj_sens_opts : opts

(** The array-contents pseudo-field of the heap abstraction. *)
val elem_field : string

type result

(** Solve from the program's entry method.  The entry's [String[]]
    parameter is seeded with synthetic argument objects. *)
val analyze : ?opts:opts -> Program.t -> result

val contexts : result -> Context.t

(** Reachable method contexts: (context id, method, receiver context). *)
val method_contexts : result -> (int * Instr.method_qname * Context.ctx) list

val mctx_info : result -> int -> Instr.method_qname * Context.ctx
val mctxs_of_method : result -> Instr.method_qname -> int list
val reachable_methods : result -> Instr.method_qname list

(** Points-to set of a variable in one method context. *)
val pts_of_var : result -> mctx:int -> Instr.var -> ObjSet.t

(** Allocation-free iteration over a variable's points-to set (used by
    the SDG's heap-indexing pass and the mod-ref direct pass).  Reads
    the union-find without compressing, so concurrent calls from worker
    domains on a finished result are race-free — run
    {!prepare_concurrent_reads} first so the uncompressed walks stay
    O(1). *)
val pts_iter_var : result -> mctx:int -> Instr.var -> (int -> unit) -> unit

(** Compress every union-find path once.  Call before fanning a result
    out to concurrent readers ({!pts_iter_var} from worker domains);
    afterwards the read-only lookups are single parent hits and the
    result is not written to by queries. *)
val prepare_concurrent_reads : result -> unit

(** Context-insensitive projection: union over the method's contexts. *)
val pts_of_var_ci : result -> Instr.method_qname -> Instr.var -> ObjSet.t

val pts_of_field : result -> obj:int -> field:string -> ObjSet.t
val pts_of_static : result -> Types.class_name -> Types.field_name -> ObjSet.t

(** Call graph: context-qualified callees of a call site. *)
val call_targets : result -> mctx:int -> stmt:Instr.stmt_id -> int list

val intrinsic_targets :
  result -> mctx:int -> stmt:Instr.stmt_id -> Instr.method_qname list

val call_targets_ci :
  result -> Instr.method_qname -> stmt:Instr.stmt_id -> Instr.method_qname list

val intrinsic_targets_ci :
  result -> Instr.method_qname -> stmt:Instr.stmt_id -> Instr.method_qname list

val num_call_graph_nodes : result -> int
val num_objects : result -> int

(** Can the pointer analysis prove the cast never fails?  The tough-cast
    experiment (section 6.3) slices from casts where this is [false]. *)
val cast_verified : result -> Instr.method_qname -> Instr.instr -> bool

(** Canonical, interning-order-independent dump of every node's
    points-to set: [(node key, sorted object keys)] sorted by node key.
    Byte-comparable across solvers — the parity oracle. *)
val pts_dump : result -> (string * string list) list

(** Canonical dump of the on-the-fly call graph (context-qualified call
    edges and intrinsic targets), comparable across solvers. *)
val call_graph_dump : result -> (string * string list) list

(** {2 Incremental re-analysis support}

    A re-lowered method body carries fresh statement ids.  When its
    constraint summary is UNCHANGED (same {!method_summary_sites}
    string), the solved analysis can be patched in place: the site
    lists of the old and new body zip positionally into a remap, and
    {!rekey_sites} moves every site-keyed structure (call-graph edges,
    wiring dedup, dispatch records, allocation-site identities) onto
    the new ids.  Anything else requires a fresh solve. *)

(** Canonical string of exactly the facts constraint generation reads
    from one method body (variable ints, refness, classes, callee
    names — statement ids, locations and plain values excluded), plus
    the allocation/call sites in deterministic body order. *)
val method_summary_sites : Instr.meth -> string * Instr.stmt_id list

(** Patch a solved analysis onto re-lowered statement ids.  [remap old]
    is [Some fresh] for a moved site, [None] to keep.  Sound only under
    summary equality (see above). *)
val rekey_sites : result -> (Instr.stmt_id -> Instr.stmt_id option) -> unit

(** Enumerate resolved call edges (caller context, call site, callee
    contexts) — the SDG patch recovers a re-lowered method's entry
    callers from this without re-running dispatch. *)
val iter_call_sites :
  result -> (caller:int -> stmt:Instr.stmt_id -> callees:int list -> unit) -> unit

(** {2 Delta-native incremental re-solve}

    The main solver logs per-method constraint provenance as it
    generates constraints (which seed/copy/load/store/call obligations
    each method context contributed — never the solve-derived work).
    {!resolve_delta} uses the log to retract a changed method's
    constraints by delete-and-rederive: it computes the affected cone
    (every node whose points-to set may depend on a retracted
    constraint, plus field nodes of objects whose allocation sites are
    gone), conservatively splits cycle-collapse classes inside the
    cone, clears the cone's points-to bits and ALL derived rows, then
    replays the surviving methods' logs — re-walking retracted-but-
    reachable methods' (new) bodies — straight into the
    difference-propagation worklist and re-solves to the fixpoint. *)

type delta_stats = {
  ds_retracted_mctxs : int;  (** contexts whose constraints were dropped *)
  ds_cone_nodes : int;       (** nodes whose points-to sets were rederived *)
  ds_total_nodes : int;
  ds_replayed_mctxs : int;   (** surviving contexts replayed from the log *)
}

(** Retract [retracted] methods' constraints and re-solve incrementally,
    mutating the result in place.  [added] names methods whose bodies
    are new in the program (they contribute constraints on demand).
    The program held by the result must already reflect the edit.
    Fails with [`Cone_too_big] when the affected cone exceeds half the
    node universe (a fresh solve is cheaper) and [`No_provenance] on
    results lifted from the reference solver; either way the result is
    untouched and a fresh solve is required. *)
val resolve_delta :
  result ->
  retracted:Instr.method_qname list ->
  added:Instr.method_qname list ->
  (delta_stats, [ `Cone_too_big | `No_provenance ]) Stdlib.result

(** {!pts_dump} / {!call_graph_dump} with sites rendered through
    [site_label] instead of raw statement ids: canonical across a
    patched analysis and a fresh rebuild of the same program, whose
    statement numberings differ but whose source locations coincide. *)
val pts_dump_loc :
  site_label:(int -> string) -> result -> (string * string list) list

val call_graph_dump_loc :
  site_label:(int -> string) -> result -> (string * string list) list

(** The original list/tree solver ([Set.Make(Int)] points-to sets, LIFO
    [(node, delta)] worklist), preserved verbatim as a telemetry-free
    oracle. *)
module Reference : sig
  type result

  val analyze : ?opts:opts -> Program.t -> result
  val num_objects : result -> int
  val pts_dump : result -> (string * string list) list
  val call_graph_dump : result -> (string * string list) list
end

(** Lift a reference result into the main representation (identity
    union-find, bitset points-to sets) so the full pipeline — SDG
    construction, slicing — can run against it unchanged. *)
val of_reference : Reference.result -> result
