(* The TJ runtime library: container classes written in TJ itself, standing
   in for the JDK collections the paper's benchmarks exercise.  Programs
   prepend [prelude] (or a subset) to their own source.

   These classes are on the default container list, so the points-to
   analysis clones their methods per receiver object when object
   sensitivity is enabled (paper, section 6.1). *)

let vector_src =
  {|class Vector {
  Object[] elems;
  int count;
  Vector() {
    this.elems = new Object[8];
    this.count = 0;
  }
  void ensure(int n) {
    if (n > this.elems.length) {
      Object[] bigger = new Object[n * 2];
      for (int i = 0; i < this.count; i++) {
        bigger[i] = this.elems[i];
      }
      this.elems = bigger;
    }
  }
  void add(Object p) {
    ensure(this.count + 1);
    this.elems[this.count] = p;
    this.count = this.count + 1;
  }
  void set(int ind, Object p) {
    this.elems[ind] = p;
  }
  Object get(int ind) {
    return this.elems[ind];
  }
  Object remove(int ind) {
    Object old = this.elems[ind];
    for (int i = ind; i < this.count - 1; i++) {
      this.elems[i] = this.elems[i + 1];
    }
    this.count = this.count - 1;
    return old;
  }
  int size() {
    return this.count;
  }
  boolean isEmpty() {
    return this.count == 0;
  }
}
|}

let hashmap_src =
  {|class MapEntry {
  String key;
  Object value;
  MapEntry next;
  MapEntry(String k, Object v, MapEntry n) {
    this.key = k;
    this.value = v;
    this.next = n;
  }
}
class HashMap {
  MapEntry[] buckets;
  int entries;
  HashMap() {
    this.buckets = new MapEntry[16];
    this.entries = 0;
  }
  int bucketOf(String key) {
    int h = 0;
    for (int i = 0; i < key.length(); i++) {
      h = h * 31 + key.charCodeAt(i);
    }
    int b = h % this.buckets.length;
    if (b < 0) { b = 0 - b; }
    return b;
  }
  void put(String key, Object value) {
    int b = bucketOf(key);
    MapEntry e = this.buckets[b];
    while (e != null) {
      if (e.key.equals(key)) {
        e.value = value;
        return;
      }
      e = e.next;
    }
    this.buckets[b] = new MapEntry(key, value, this.buckets[b]);
    this.entries = this.entries + 1;
  }
  Object get(String key) {
    int b = bucketOf(key);
    MapEntry e = this.buckets[b];
    while (e != null) {
      if (e.key.equals(key)) {
        return e.value;
      }
      e = e.next;
    }
    return null;
  }
  boolean containsKey(String key) {
    return get(key) != null;
  }
  int size() {
    return this.entries;
  }
}
|}

let stack_src =
  {|class Stack {
  Object[] cells;
  int top;
  Stack() {
    this.cells = new Object[16];
    this.top = 0;
  }
  void push(Object p) {
    if (this.top == this.cells.length) {
      Object[] bigger = new Object[this.top * 2];
      for (int i = 0; i < this.top; i++) {
        bigger[i] = this.cells[i];
      }
      this.cells = bigger;
    }
    this.cells[this.top] = p;
    this.top = this.top + 1;
  }
  Object pop() {
    this.top = this.top - 1;
    return this.cells[this.top];
  }
  Object peek() {
    return this.cells[this.top - 1];
  }
  boolean isEmpty() {
    return this.top == 0;
  }
}
|}

(* Containers a program may select individually: the fuzz generator (and
   any other program generator) asks only for the classes it actually
   uses, which keeps the points-to universe — and hence each fuzz
   iteration's analysis time — proportional to the program.  [`HashMap]
   brings its [MapEntry] helper class along. *)
type container = [ `Vector | `HashMap | `Stack ]

let container_src : container -> string = function
  | `Vector -> vector_src
  | `HashMap -> hashmap_src
  | `Stack -> stack_src

(* Prelude restricted to the given containers, deduplicated, in the
   canonical Vector/HashMap/Stack order (so the same selection always
   renders the same source bytes). *)
let prelude_of (cs : container list) : string =
  [ `Vector; `HashMap; `Stack ]
  |> List.filter (fun c -> List.mem (c :> container) cs)
  |> List.map container_src
  |> String.concat ""

(* All containers, for programs that want everything. *)
let prelude = prelude_of [ `Vector; `HashMap; `Stack ]

(* Patch a source: replace the unique occurrence of [from] with [into];
   raises if [from] is absent or ambiguous.  Used to inject bugs. *)
let patch ~(from : string) ~(into : string) (src : string) : string =
  let flen = String.length from in
  let occurrences = ref [] in
  for i = 0 to String.length src - flen do
    if String.sub src i flen = from then occurrences := i :: !occurrences
  done;
  match !occurrences with
  | [ i ] ->
    String.sub src 0 i ^ into ^ String.sub src (i + flen) (String.length src - i - flen)
  | [] -> invalid_arg (Printf.sprintf "Runtime_lib.patch: %S not found" from)
  | _ -> invalid_arg (Printf.sprintf "Runtime_lib.patch: %S is ambiguous" from)

(* 1-based line number of the unique line containing [pattern]. *)
let line_of ~(src : string) ~(pattern : string) : int =
  let lines = String.split_on_char '\n' src in
  let contains l =
    let ll = String.length l and pl = String.length pattern in
    let rec go i = i + pl <= ll && (String.sub l i pl = pattern || go (i + 1)) in
    go 0
  in
  let hits =
    List.mapi (fun i l -> (i + 1, l)) lines |> List.filter (fun (_, l) -> contains l)
  in
  match hits with
  | [ (n, _) ] -> n
  | [] -> invalid_arg (Printf.sprintf "Runtime_lib.line_of: %S not found" pattern)
  | (n, _) :: _ ->
    (* several hits: fall back to the first, but only if the others are
       identical lines (common for closing braces); otherwise ambiguous *)
    if List.for_all (fun (_, l) -> l = snd (List.hd hits)) hits then n
    else invalid_arg (Printf.sprintf "Runtime_lib.line_of: %S is ambiguous" pattern)
