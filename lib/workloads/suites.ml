(* The canonical workload index: every program the BENCH suite measures,
   as (name, source) pairs.  Shared by the property tests (CSR parity,
   parallel-batch parity, expansion fixpoint), so "all 9 paper
   workloads" means the same list everywhere. *)

let paper_workloads : (string * string) list =
  [ ("nanoxml", Prog_nanoxml.base);
    ("jtopas", Prog_jtopas.base);
    ("ant", Prog_ant.base);
    ("xmlsec", Prog_xmlsec.base);
    ("mtrt", Prog_mtrt.base);
    ("jess", Prog_jess.base);
    ("javac", Prog_javac.base);
    ("jack", Prog_jack.base);
    ("pipeline-32", Generators.pipeline_program ~stages:32) ]
